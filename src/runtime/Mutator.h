//===- runtime/Mutator.h - The mutator-facing runtime API -------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime facade workloads program against: allocation entry points,
/// barriered field writes, activation-record management, the register file,
/// and SML-style exceptions. This is the C++ stand-in for the code a
/// TIL-compiled SML program would execute.
///
/// ## The pointer-slot discipline
///
/// Collections move objects. Any heap pointer that must survive a possible
/// collection (i.e. any allocation) must live in a Frame slot — never in a
/// C++ local — and be re-read from the slot after each allocation:
///
/// \code
///   Frame F(M, KeyCons);            // push an activation record
///   F.set(1, Xs);                   // pointer local in a Pointer slot
///   Value Cell = M.allocRecord(SiteCons, 2, /*PtrMask=*/0b10);
///   M.initField(Cell, 0, Value::fromInt(42));
///   M.initField(Cell, 1, F.get(1)); // re-read after the allocation
/// \endcode
///
/// ## Exceptions
///
/// Mutator::raise unwinds the shadow stack directly to the innermost
/// handler — one jump, exactly like a compiled `raise` — retiring
/// jumped-over stack markers and updating the watermark M (paper §5). The
/// C++ stack is unwound by a (contained) C++ exception; Frame destructors
/// detect in-flight unwinding and skip their pop.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_RUNTIME_MUTATOR_H
#define TILGC_RUNTIME_MUTATOR_H

#include "gc/Collector.h"
#include "gc/GenerationalCollector.h"
#include "gc/SemispaceCollector.h"
#include "object/Object.h"
#include "profile/AllocSite.h"
#include "profile/HeapProfiler.h"
#include "stack/RegisterFile.h"
#include "stack/ShadowStack.h"

#include <cstring>
#include <exception>
#include <memory>
#include <vector>

namespace tilgc {

class EventRecorder;

/// Which collector a mutator runs on.
enum class CollectorKind { Semispace, Generational };

/// Everything configurable about a runtime instance; defaults mirror the
/// paper's setup.
struct MutatorConfig {
  CollectorKind Kind = CollectorKind::Generational;
  /// Name for diagnostics: heap-state dumps and fatal errors cite it so a
  /// torture matrix can tell which workload/configuration died.
  std::string Name;
  /// Total memory budget: the paper's k*Min.
  size_t BudgetBytes = 64u << 20;
  /// Hard cap on total heap footprint. 0 = unlimited (the paper's
  /// soft-budget behavior: collections may grow past BudgetBytes, counting
  /// BudgetOverruns). When set, exhaustion becomes a catchable
  /// HeapExhausted carrying a heap-state dump, in every build mode.
  size_t HardLimitBytes = 0;
  /// Generational stack collection (§5).
  bool UseStackMarkers = false;
  unsigned MarkerPeriod = 25;
  /// §7.1 dynamic marker placement (adaptive period).
  bool AdaptiveMarkerPlacement = false;
  /// Scan stack frames through compiled ScanPlans; false restores the
  /// paper's interpretive trace-table scan.
  bool CompiledScanPlans = true;
  /// Pretenuring decisions (§6); generational only.
  std::vector<PretenureDecision> Pretenure;
  /// Write barrier flavor; generational only. Hybrid starts as an SSB and
  /// degrades to card marking when the flood heuristic trips (Peg).
  GenerationalCollector::BarrierKind Barrier =
      GenerationalCollector::BarrierKind::SequentialStoreBuffer;
  /// Major-collection engine; generational only. Semispace is the paper's
  /// evacuating major; MarkCompact is the region-structured in-place
  /// compactor (~1x standing footprint, moves only what pays).
  GenerationalCollector::MajorGcKind MajorGc =
      GenerationalCollector::MajorGcKind::Semispace;
  /// 1 = promote-all; >1 = aged-tenuring ablation.
  unsigned PromoteAgeThreshold = 1;
  size_t NurseryLimitBytes = 512u << 10;
  size_t LargeObjectThresholdBytes = 4096;
  double SemispaceTargetLiveness = 0.10;
  double TenuredTargetLiveness = 0.3;
  /// Attach a heap profiler (slows the run; paper: 50-200%).
  bool EnableProfiling = false;
  /// Debug: verify the §5 reused-root invariant at each minor collection.
  bool VerifyReuseInvariant = false;
  /// Debug: walk and validate the whole heap after every collection.
  /// Legacy switch — equivalent to VerifyLevel = 1.
  bool VerifyHeapAfterGC = false;
  /// Leveled heap invariant auditing, active in every build mode:
  /// 0 = off; 1 = post-GC heap walk; 2 = + pre-minor remembered-set
  /// completeness audit (generational); 3 = + from-space poisoning with
  /// wild-write integrity checks.
  unsigned VerifyLevel = 0;
  /// Evacuation threads: 1 = the serial engine (bit-identical paper
  /// reproduction); >1 = the work-stealing ParallelEvacuator.
  unsigned GcThreads = 1;
  /// Pause-budget SLO in microseconds; 0 = stock stop-the-world majors
  /// (bit-identical to builds without the feature). When set (generational
  /// + MarkCompact only), major collections run as an incremental cycle:
  /// the mark phase is sliced into increments budgeted against this value
  /// and scheduled at allocation safepoints, with an SATB deletion barrier
  /// keeping the snapshot sound; only the finishing compaction stays
  /// stop-the-world. See GenerationalCollector::Options::MaxPauseMicros.
  uint64_t MaxPauseMicros = 0;
  /// GC-cycle watchdog deadline in microseconds; 0 = disarmed (free on
  /// every path). Generational only. See GenerationalCollector::Options.
  uint64_t GcDeadlineMicros = 0;
  /// Safepoint-rendezvous watchdog deadline in microseconds; 0 = disarmed.
  /// Consumed by MutatorGroup's coordinator (multi-mutator runtime only).
  uint64_t SafepointDeadlineMicros = 0;
  /// Bark escalation: Report (diagnose), Recover (+ cooperative abort →
  /// major-engine failover), Fatal (terminate with the diagnostic).
  WatchdogPolicy WatchdogEscalation = WatchdogPolicy::Recover;
  /// Consecutive major-engine failovers before MarkCompact is
  /// sticky-disabled in favor of the semispace fallback.
  unsigned FailoverStickyLimit = 3;
  /// Telemetry observer to register with the collector (non-owning; must
  /// outlive the mutator). Registering any observer arms per-collection
  /// event assembly and phase stamps (see observe/GcTelemetry.h).
  GcObserver *Observer = nullptr;
  /// When nonempty, record collections in a bounded ring and write a
  /// chrome://tracing JSON trace here at destruction. Empty falls back to
  /// the TILGC_TRACE_OUT environment variable; both empty = no recording.
  std::string TraceOutPath;
  /// Ring capacity (events retained) for the trace recorder.
  size_t TelemetryRingEvents = 4096;
};

/// The value an SML `raise` transports, plus the handler it targets. Thrown
/// by Mutator::raise after the shadow stack has already been unwound.
struct MLRaise {
  Value Exn;
  uint64_t HandlerId;
};

class Frame;
class MutatorGroup;

/// One runtime instance: heap + stack + registers + collector.
///
/// In the multi-mutator runtime (runtime/MutatorGroup.h) several Mutators
/// share one collector: the group's primary mutator owns it, attached
/// mutators reference it, and every member allocates through a per-thread
/// TLAB with a safepoint poll instead of the single-mutator fast path. A
/// Mutator that was never attached to a group behaves bit-identically to
/// the pre-group runtime.
class Mutator {
public:
  explicit Mutator(const MutatorConfig &Config = MutatorConfig());

  /// Multi-mutator runtime: an attached mutator shares \p SharedGC (owned
  /// by the group's primary mutator). Only MutatorGroup constructs these —
  /// the group registers the stack/registers as an extra root context and
  /// wires the TLAB/safepoint machinery via attachToGroup.
  Mutator(Collector &SharedGC, const MutatorConfig &Config);

  ~Mutator();
  Mutator(const Mutator &) = delete;
  Mutator &operator=(const Mutator &) = delete;

  //===--------------------------------------------------------------------===
  // Allocation. Every entry point may collect; re-read pointers from frame
  // slots afterwards. Payloads are zeroed.
  //
  // Entry points go through a bump-pointer fast path: the collector
  // designates a space (the nursery / the active semispace) and a size
  // bound once, the mutator caches them and allocates inline until a
  // collection invalidates the cache (stats().NumGC is the epoch). Sites
  // the collector routes elsewhere (pretenured) and objects over the bound
  // (large arrays) fall through to the collector's full allocate(), as
  // does any bump failure — so the slow path's semantics are preserved
  // exactly; the fast path only skips the virtual dispatch and the
  // per-call placement re-derivation.
  //===--------------------------------------------------------------------===

  /// A record of \p NumFields fields; bit i of \p PtrMask marks field i as
  /// a pointer.
  Value allocRecord(uint32_t Site, uint32_t NumFields, uint32_t PtrMask) {
    return Value::fromPtr(
        allocImpl(ObjectKind::Record, NumFields, PtrMask, Site));
  }

  /// An array of \p NumElems pointers (initially null).
  Value allocPtrArray(uint32_t Site, uint32_t NumElems) {
    return Value::fromPtr(allocImpl(ObjectKind::PtrArray, NumElems, 0, Site));
  }

  /// An array of \p NumWords raw words (unboxed ints / doubles / bytes).
  Value allocNonPtrArray(uint32_t Site, uint32_t NumWords) {
    return Value::fromPtr(
        allocImpl(ObjectKind::NonPtrArray, NumWords, 0, Site));
  }

  /// A runtime type descriptor for Compute traces: a one-field record whose
  /// field says whether the described value is a pointer.
  Value allocTypeDesc(bool DescribesPointer) {
    Value D = allocRecord(RuntimeSiteId, 1, 0);
    initField(D, 0, Value::fromInt(DescribesPointer ? 1 : 0));
    return D;
  }

  //===--------------------------------------------------------------------===
  // Field access.
  //===--------------------------------------------------------------------===

  static Value getField(Value Obj, uint32_t I) {
    assert(!Obj.isNull() && I < header::length(descriptorOf(Obj.asPtr())) &&
           "field index out of range");
    return Value::fromBits(Obj.asPtr()[I]);
  }

  /// Initializing store into a fresh object (no barrier; the collector
  /// scans freshly pretenured regions and new large objects instead).
  void initField(Value Obj, uint32_t I, Value V) {
    assert(!Obj.isNull() && I < header::length(descriptorOf(Obj.asPtr())) &&
           "field index out of range");
    Obj.asPtr()[I] = V.bits();
  }

  /// Mutating store. Pointer stores go through the write barrier and are
  /// counted (Table 2's "Number of Pointer Updates").
  void writeField(Value Obj, uint32_t I, Value V, bool IsPointerField) {
    assert(!Obj.isNull() && I < header::length(descriptorOf(Obj.asPtr())) &&
           "field index out of range");
    Word *Slot = &Obj.asPtr()[I];
    // Pause-budget SATB deletion barrier: while an incremental mark is
    // live, the value being *overwritten* is a snapshot edge and must be
    // recorded before the store clobbers it. satbLive() is a single
    // predicted-false load outside a cycle.
    if (IsPointerField && TILGC_UNLIKELY(GC->satbLive())) {
      if (TILGC_UNLIKELY(Group != nullptr))
        LocalSatb.push_back(*Slot); // replayed at the next safepoint merge
      else
        GC->satbRecord(*Slot);
    }
    *Slot = V.bits();
    if (IsPointerField) {
      ++NumPointerUpdates;
      if (TILGC_UNLIKELY(Group != nullptr)) {
        // Multi-mutator mode: the shared barrier state (SSB, card table,
        // hybrid latch) is not thread-safe, so slots buffer thread-locally
        // and replay through the real barrier at the next safepoint merge
        // (world stopped, thread-index order). Semantically equivalent for
        // every barrier kind: SSB/cards dedupe or tolerate late recording,
        // and the filtered/hybrid checks see the slot's final pre-GC state.
        if (RecordLocalBarrier)
          LocalSSB.push_back(Slot);
      } else {
        GC->writeBarrier(Slot);
      }
    }
  }

  /// Payload length in words/elements.
  static uint32_t objectLength(Value Obj) {
    assert(!Obj.isNull() && "length of null");
    return header::length(descriptorOf(Obj.asPtr()));
  }

  //===--------------------------------------------------------------------===
  // Registers.
  //===--------------------------------------------------------------------===

  void setRegister(unsigned R, Value V) { Regs[R] = V.bits(); }
  Value getRegister(unsigned R) const { return Value::fromBits(Regs[R]); }

  //===--------------------------------------------------------------------===
  // Activation records (used via the Frame RAII class).
  //===--------------------------------------------------------------------===

  size_t pushFrame(uint32_t Key) {
    const FrameLayout &L = TraceTableRegistry::global().lookup(Key);
    return Stack.pushFrame(Key, L.numSlots());
  }

  void popFrame(size_t Base) {
    assert((Handlers.empty() || Handlers.back().FrameBase != Base) &&
           "popping a frame with a live exception handler");
    uint32_t Key = Stack.keyOf(Base);
    if (TILGC_UNLIKELY(Key == StubKey)) {
      // The "stub function" of §5: a marked frame is returning.
      MarkerManager *MM = GC->markerManager();
      assert(MM && "stub key without stack markers");
      Key = MM->onStubPop(Base);
      Stack.setKey(Base, Key);
    }
    Stack.popFrame(Base);
  }

  //===--------------------------------------------------------------------===
  // SML-style exceptions.
  //===--------------------------------------------------------------------===

  /// Registers an exception handler on the frame at \p FrameBase (must be
  /// the topmost frame). Returns the id to match in the catch clause and to
  /// pass to popHandler on normal exit.
  uint64_t pushHandler(size_t FrameBase) {
    assert(FrameBase == Stack.topFrameBase() &&
           "handlers live on the current frame");
    Handlers.push_back(HandlerEntry{FrameBase, ++NextHandlerId});
    return NextHandlerId;
  }

  /// Deregisters a handler on the normal (non-raising) path.
  void popHandler(uint64_t Id) {
    assert(!Handlers.empty() && Handlers.back().Id == Id &&
           "handler discipline violated");
    (void)Id;
    Handlers.pop_back();
  }

  /// Raises \p Exn: unwinds the shadow stack directly to the innermost
  /// handler's frame (one jump, as compiled code would), then throws MLRaise
  /// to unwind the mirrored C++ stack.
  [[noreturn]] void raise(Value Exn);

  //===--------------------------------------------------------------------===
  // Introspection / control.
  //===--------------------------------------------------------------------===

  void collect(bool Major = false);

  /// Runs the collector's heap verifier on demand (any build mode). Returns
  /// false and fills \p Error on the first violation — the torture driver's
  /// "the heap is never corrupt, even after a structured failure" check.
  bool verifyHeap(std::string &Error) const {
    return GC->verifyHeapNow(Error);
  }

  GcStats &gcStats() { return GC->stats(); }
  const GcStats &gcStats() const { return GC->stats(); }
  Collector &collector() { return *GC; }
  GcTelemetry &telemetry() { return GC->telemetry(); }
  const GcTelemetry &telemetry() const { return GC->telemetry(); }
  /// The trace recorder, present only when a trace path was configured.
  EventRecorder *traceRecorder() { return Recorder.get(); }
  ShadowStack &stack() { return Stack; }
  RegisterFile &registers() { return Regs; }
  HeapProfiler *profiler() { return Profiler.get(); }
  uint64_t pointerUpdates() const { return NumPointerUpdates; }
  uint64_t raises() const { return NumRaises; }
  const MutatorConfig &config() const { return Config; }

private:
  struct HandlerEntry {
    size_t FrameBase;
    uint64_t Id;
  };

  /// The allocation fast path (see the allocation section comment).
  Word *allocImpl(ObjectKind Kind, uint32_t LenWords, uint32_t PtrMask,
                  uint32_t Site) {
    Word Descriptor = header::make(Kind, LenWords, PtrMask);
    if (TILGC_UNLIKELY(Group != nullptr))
      return allocMulti(Kind, Descriptor, LenWords, PtrMask, Site);
    if (TILGC_LIKELY(siteAllowsFast(Site))) {
      if (TILGC_UNLIKELY(GC->stats().NumGC != FastEpoch)) {
        FastSpace = GC->inlineAllocSpace(FastMaxBytes);
        FastEpoch = GC->stats().NumGC;
      }
      if (TILGC_LIKELY(FastSpace &&
                       objectTotalBytes(Descriptor) < FastMaxBytes)) {
        Word *Payload = FastSpace->allocate(Descriptor, GC->objectMeta(Site));
        if (TILGC_LIKELY(Payload != nullptr)) {
          GC->noteAllocated(Kind, Descriptor, Site);
          std::memset(Payload, 0,
                      static_cast<size_t>(LenWords) * sizeof(Word));
          return Payload;
        }
      }
    }
    return GC->allocate(Kind, LenWords, PtrMask, Site);
  }

  /// Per-site fast-path admission, memoized (0 = unknown, 1 = fast,
  /// 2 = slow). The collector's answer is fixed for its lifetime —
  /// pretenure decisions are construction-time options.
  bool siteAllowsFast(uint32_t Site) {
    if (TILGC_UNLIKELY(Site >= SiteFastFlag.size()))
      SiteFastFlag.resize(Site + 1, 0);
    uint8_t &F = SiteFastFlag[Site];
    if (TILGC_UNLIKELY(F == 0))
      F = GC->siteAllowsInlineAlloc(Site) ? 1 : 2;
    return F == 1;
  }

  //===--------------------------------------------------------------------===
  // Multi-mutator mode (runtime/MutatorGroup.h). All of this is inert —
  // Group stays null, one branch-not-taken on the allocation and barrier
  // paths — unless MutatorGroup attached this mutator.
  //===--------------------------------------------------------------------===

  friend class MutatorGroup;

  /// The multi-mutator allocation path: safepoint poll, then TLAB bump,
  /// then a stop-the-world slow path through the group.
  Word *allocMulti(ObjectKind Kind, Word Descriptor, uint32_t LenWords,
                   uint32_t PtrMask, uint32_t Site);

  /// Retires the current TLAB (if any) and grabs a fresh block of at least
  /// \p NeedWords from the collector's inline-allocation space. Returns the
  /// block start, or null if no space/block is available (caller falls to
  /// the stop-the-world slow path).
  Word *refillTlab(size_t NeedWords);

  /// Returns the unused TLAB tail to the space if it is still the last
  /// grant, else plugs it with a Pad so heap walks stay valid.
  void retireTlab();

  /// Wires this mutator into \p G as thread \p Idx (called by MutatorGroup
  /// once, with the world quiescent).
  void attachToGroup(MutatorGroup &G, unsigned Idx, bool Profiling,
                     bool RecordBarrier);

  /// Thread-local allocation statistics, folded into the shared GcStats at
  /// each safepoint merge (thread-index order, so totals are deterministic).
  struct LocalAlloc {
    uint64_t BytesAllocated = 0;
    uint64_t ObjectsAllocated = 0;
    uint64_t RecordBytesAllocated = 0;
    uint64_t ArrayBytesAllocated = 0;
    uint64_t TlabRefills = 0;
    uint64_t TlabPadBytes = 0;
  };

  MutatorGroup *Group = nullptr;
  unsigned GroupIdx = 0;
  /// Generational collectors need barrier records; semispace has none.
  bool RecordLocalBarrier = false;
  Word *TlabNext = nullptr;
  Word *TlabEnd = nullptr;
  Space *TlabSpace = nullptr;
  /// Size bound from inlineAllocSpace at attach time; objects at or over it
  /// (large objects) always take the stop-the-world slow path.
  size_t TlabMaxBytes = 0;
  /// Thread-local store buffer: pointer-store slots recorded here and
  /// replayed through the collector's real write barrier at safepoints.
  std::vector<Word *> LocalSSB;
  /// Thread-local SATB buffer (pause-budget mode): overwritten pointer
  /// values captured while an incremental mark is live, replayed through
  /// Collector::satbRecord at the next safepoint merge — before any
  /// collection work moves objects or advances the mark.
  std::vector<Word> LocalSatb;
  LocalAlloc LocalStats;
  /// Shared-counter snapshot from the last safepoint merge; birth stamps in
  /// TLAB allocations are (SharedBytesAtMerge + local bytes) >> 10, which
  /// matches the serial stamp stream up to inter-thread interleaving.
  uint64_t SharedBytesAtMerge = 0;
  /// Per-thread profiler scratch, merged into the shared profiler at
  /// safepoints (same scheme as the parallel evacuator's workers).
  std::unique_ptr<HeapProfiler> LocalProf;

  /// TLAB grant size: 2048 words = 16 KB, 1/32 of the default nursery.
  static constexpr size_t TlabWords = 2048;

  MutatorConfig Config;
  ShadowStack Stack;
  RegisterFile Regs;
  std::unique_ptr<HeapProfiler> Profiler;
  /// Trace recording (TraceOutPath / TILGC_TRACE_OUT): the ring the
  /// exporter serializes at destruction. Registered as an observer before
  /// the collector is built so construction-time audits land in it too.
  std::unique_ptr<EventRecorder> Recorder;
  std::string TracePath;
  /// The collector: primary/standalone mutators own it (OwnedGC holds it,
  /// GC points at it); attached mutators alias the group primary's.
  std::unique_ptr<Collector> OwnedGC;
  Collector *GC = nullptr;
  std::vector<HandlerEntry> Handlers;
  uint64_t NextHandlerId = 0;
  uint64_t NumPointerUpdates = 0;
  uint64_t NumRaises = 0;

  /// Allocation fast-path cache (invalidated by epoch: every collection
  /// bumps stats().NumGC, and spaces only change at collections).
  Space *FastSpace = nullptr;
  size_t FastMaxBytes = 0;
  uint64_t FastEpoch = ~uint64_t{0};
  std::vector<uint8_t> SiteFastFlag;
};

/// RAII activation record. See the file comment for the discipline.
class Frame {
public:
  Frame(Mutator &M, uint32_t Key)
      : M(M), ExnDepth(std::uncaught_exceptions()) {
    FrameBase = M.pushFrame(Key);
  }
  ~Frame() {
    // If an ML raise is unwinding the C++ stack, the shadow stack was
    // already unwound in one jump; skip the individual pop.
    if (std::uncaught_exceptions() > ExnDepth)
      return;
    M.popFrame(FrameBase);
  }
  Frame(const Frame &) = delete;
  Frame &operator=(const Frame &) = delete;

  Value get(unsigned Slot) const {
    return Value::fromBits(M.stack().slot(FrameBase, Slot));
  }
  void set(unsigned Slot, Value V) {
    // Compiled code can only store into its own (topmost) activation
    // record; writing an ancestor frame's slot would break the §5 invariant
    // that frames below a stack marker are unchanged. Mutable state shared
    // with callees goes through a heap ref cell, as in SML.
    assert(M.stack().topFrameBase() == FrameBase &&
           "stores into non-top frames are impossible in compiled code; "
           "use a heap ref cell instead");
    M.stack().slot(FrameBase, Slot) = V.bits();
  }
  void setInt(unsigned Slot, int64_t I) { set(Slot, Value::fromInt(I)); }
  int64_t getInt(unsigned Slot) const { return get(Slot).asInt(); }

  size_t base() const { return FrameBase; }

private:
  Mutator &M;
  size_t FrameBase;
  int ExnDepth;
};

} // namespace tilgc

#endif // TILGC_RUNTIME_MUTATOR_H
