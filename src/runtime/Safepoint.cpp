//===- runtime/Safepoint.cpp - Stop-the-world rendezvous ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Safepoint.h"

#include "observe/GcTelemetry.h"
#include "support/Fatal.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace tilgc;

void SafepointCoordinator::arm(unsigned NumThreads) {
  std::lock_guard<std::mutex> L(M);
  if (StopInProgress || NumSafe != 0)
    fatalError("safepoint coordinator re-armed mid-stop");
  if (NumThreads > ParkBeginNs.size())
    ParkBeginNs.resize(NumThreads, 0);
  NumActive = NumThreads;
}

void SafepointCoordinator::deactivate(unsigned Idx) {
  (void)Idx;
  std::lock_guard<std::mutex> L(M);
  assert(NumActive > 0 && "deactivate without matching arm");
  --NumActive;
  OwnerCv.notify_all();
}

void SafepointCoordinator::yield(unsigned Idx) {
  if (TILGC_UNLIKELY(FaultInjector::enabled())) {
    FaultInjector &FI = FaultInjector::global();
    if (FI.shouldFire(FaultPoint::SafepointStall))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (FI.shouldFire(FaultPoint::SafepointNoShow)) {
      // The watchdog's canonical prey: skip this poll entirely — the
      // rendezvous cannot complete until this thread reaches a LATER poll
      // (or deactivates), stretching the stop past any tight deadline.
      // Bounded (a sleep, then a normal return to the allocation loop) so
      // the rendezvous still completes and torture runs terminate.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      return;
    }
  }
  std::unique_lock<std::mutex> L(M);
  while (StopInProgress) {
    ++NumSafe;
    ParkBeginNs[Idx] = GcTelemetry::nowNs();
    OwnerCv.notify_all();
    ResumeCv.wait(L, [this] { return !StopInProgress; });
    --NumSafe;
    ParkBeginNs[Idx] = 0;
  }
}

void SafepointCoordinator::beginStopLocked(std::unique_lock<std::mutex> &L,
                                           unsigned Idx) {
  // Another thread may own a stop already: park behind it first, then
  // retry the claim. A queued stopper re-runs its own operation once it
  // gets the world — often finding the condition that stopped it (a full
  // nursery) already resolved by the first owner's collection.
  while (StopInProgress) {
    ++NumSafe;
    ParkBeginNs[Idx] = GcTelemetry::nowNs();
    OwnerCv.notify_all();
    ResumeCv.wait(L, [this] { return !StopInProgress; });
    --NumSafe;
    ParkBeginNs[Idx] = 0;
  }
  StopInProgress = true;
  Requested.store(true, std::memory_order_relaxed);
  LastWaitBeginNs = GcTelemetry::nowNs();
  // Supervise the wait below: every other active thread must park before
  // the deadline or the watchdog barks with the per-mutator park state.
  // The rendezvous itself is NOT abandoned — there is no safe way to
  // un-request a stop half the threads already honored — so even a
  // Recover-policy bark only reports (and latches the recover flag for
  // the GC plane); the wait then continues until the stragglers arrive.
  armRendezvousWatchdog();
  OwnerCv.wait(L, [this] { return NumSafe + 1 >= NumActive; });
  if (TILGC_UNLIKELY(WD != nullptr) && WdDeadlineUs)
    // Called with M held: safe, the bark fill only try_locks M.
    WD->disarm();
  LastWaitEndNs = GcTelemetry::nowNs();
  ++NumStops;
  LastParkSpans.clear();
  for (unsigned T = 0; T < ParkBeginNs.size(); ++T)
    if (ParkBeginNs[T] != 0)
      LastParkSpans.push_back(
          GcWorkerSpan{T, ParkBeginNs[T], LastWaitEndNs, 0, 0, false});
}

void SafepointCoordinator::armRendezvousWatchdog() {
  if (TILGC_LIKELY(WD == nullptr) || WdDeadlineUs == 0)
    return;
  WatchdogBark Proto;
  Proto.What = WatchdogBark::Kind::SafepointRendezvous;
  Proto.Seq = NumStops + 1;
  Proto.DeadlineMicros = WdDeadlineUs;
  Proto.Policy = WdPolicy;
  Proto.MutatorsExpected = NumActive ? NumActive - 1 : 0;
  WD->arm(
      std::move(Proto), WdDeadlineUs,
      [this](WatchdogBark &B) { fillRendezvousBark(B); }, WdDispatch);
}

void SafepointCoordinator::fillRendezvousBark(WatchdogBark &B) {
  B.WhenNs = GcTelemetry::nowNs();
  // Supervisor thread. The stop owner sits inside OwnerCv.wait with M
  // released, so the try_lock normally succeeds; if it races the owner's
  // wakeup instead, the arm-time fields still describe the stall.
  std::unique_lock<std::mutex> L(M, std::try_to_lock);
  if (!L.owns_lock()) {
    B.Detail += "park state unavailable (coordinator mutex contended)\n";
    return;
  }
  B.MutatorsParked = NumSafe;
  B.MutatorsExpected = NumActive ? NumActive - 1 : 0;
  B.Detail += "per-mutator park state (one unparked thread is the stop "
              "owner):\n";
  for (unsigned T = 0; T < ParkBeginNs.size(); ++T) {
    char Buf[96];
    if (ParkBeginNs[T])
      std::snprintf(Buf, sizeof(Buf), "  mutator %u: parked for %llu us\n", T,
                    (unsigned long long)((B.WhenNs - ParkBeginNs[T]) / 1000));
    else
      std::snprintf(Buf, sizeof(Buf), "  mutator %u: NOT PARKED\n", T);
    B.Detail += Buf;
  }
}

void SafepointCoordinator::resumeLocked() {
  Requested.store(false, std::memory_order_relaxed);
  StopInProgress = false;
  ResumeCv.notify_all();
}
