//===- runtime/Safepoint.cpp - Stop-the-world rendezvous ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Safepoint.h"

#include "observe/GcTelemetry.h"
#include "support/Fatal.h"
#include "support/FaultInjector.h"

#include <cassert>
#include <chrono>
#include <thread>

using namespace tilgc;

void SafepointCoordinator::arm(unsigned NumThreads) {
  std::lock_guard<std::mutex> L(M);
  if (StopInProgress || NumSafe != 0)
    fatalError("safepoint coordinator re-armed mid-stop");
  if (NumThreads > ParkBeginNs.size())
    ParkBeginNs.resize(NumThreads, 0);
  NumActive = NumThreads;
}

void SafepointCoordinator::deactivate(unsigned Idx) {
  (void)Idx;
  std::lock_guard<std::mutex> L(M);
  assert(NumActive > 0 && "deactivate without matching arm");
  --NumActive;
  OwnerCv.notify_all();
}

void SafepointCoordinator::yield(unsigned Idx) {
  if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
      FaultInjector::global().shouldFire(FaultPoint::SafepointStall))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::unique_lock<std::mutex> L(M);
  while (StopInProgress) {
    ++NumSafe;
    ParkBeginNs[Idx] = GcTelemetry::nowNs();
    OwnerCv.notify_all();
    ResumeCv.wait(L, [this] { return !StopInProgress; });
    --NumSafe;
    ParkBeginNs[Idx] = 0;
  }
}

void SafepointCoordinator::beginStopLocked(std::unique_lock<std::mutex> &L,
                                           unsigned Idx) {
  // Another thread may own a stop already: park behind it first, then
  // retry the claim. A queued stopper re-runs its own operation once it
  // gets the world — often finding the condition that stopped it (a full
  // nursery) already resolved by the first owner's collection.
  while (StopInProgress) {
    ++NumSafe;
    ParkBeginNs[Idx] = GcTelemetry::nowNs();
    OwnerCv.notify_all();
    ResumeCv.wait(L, [this] { return !StopInProgress; });
    --NumSafe;
    ParkBeginNs[Idx] = 0;
  }
  StopInProgress = true;
  Requested.store(true, std::memory_order_relaxed);
  LastWaitBeginNs = GcTelemetry::nowNs();
  OwnerCv.wait(L, [this] { return NumSafe + 1 >= NumActive; });
  LastWaitEndNs = GcTelemetry::nowNs();
  ++NumStops;
  LastParkSpans.clear();
  for (unsigned T = 0; T < ParkBeginNs.size(); ++T)
    if (ParkBeginNs[T] != 0)
      LastParkSpans.push_back(
          GcWorkerSpan{T, ParkBeginNs[T], LastWaitEndNs, 0, 0, false});
}

void SafepointCoordinator::resumeLocked() {
  Requested.store(false, std::memory_order_relaxed);
  StopInProgress = false;
  ResumeCv.notify_all();
}
