//===- observe/TraceExporter.h - chrome://tracing JSON export ---*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an EventRecorder's contents as a chrome://tracing /
/// Perfetto-loadable JSON object ({"traceEvents": [...]}):
///  - one complete event ("ph":"X") per collection on the "GC" track,
///    carrying trigger/bytes/frames counters in "args";
///  - one complete event per phase that ran, nested under the collection;
///  - per-worker tracks (tid = worker index + 1) with one complete event
///    per worker's evacuation span when parallel evacuation stamped them;
///  - instant events ("ph":"i") for pretenure-decision audits and worker
///    faults.
/// Timestamps are microseconds relative to the process telemetry epoch.
///
/// The mutator arms this automatically when TILGC_TRACE_OUT=<path> is set
/// (or MutatorConfig::TraceOutPath), writing the file when the mutator is
/// destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_TRACEEXPORTER_H
#define TILGC_OBSERVE_TRACEEXPORTER_H

#include "observe/EventRecorder.h"

#include <string>

namespace tilgc {

class TraceExporter {
public:
  /// Renders \p R as a chrome://tracing JSON string. A non-empty
  /// \p SessionName (typically Options::Name) is emitted as process_name
  /// metadata; all non-literal strings are JSON-escaped.
  static std::string render(const EventRecorder &R,
                            const std::string &SessionName = "");

  /// Renders and writes to \p Path. Returns false (and leaves no partial
  /// file behind beyond what the filesystem allows) on I/O failure.
  static bool writeFile(const EventRecorder &R, const std::string &Path,
                        const std::string &SessionName = "");
};

} // namespace tilgc

#endif // TILGC_OBSERVE_TRACEEXPORTER_H
