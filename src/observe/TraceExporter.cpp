//===- observe/TraceExporter.cpp - chrome://tracing JSON export -----------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "observe/TraceExporter.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace tilgc {

namespace {

/// Microsecond timestamp with ns resolution kept as decimals (the trace
/// format's ts/dur are doubles in µs).
void appendUs(std::string &Out, uint64_t Ns) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64 ".%03u", Ns / 1000,
                static_cast<unsigned>(Ns % 1000));
  Out += Buf;
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

/// JSON string-body escaping for every non-literal string the trace emits:
/// user-controlled names (Options::Name), watchdog bark detail text, and
/// anything else that could carry a quote, backslash, or control byte. A
/// single unescaped quote in a mutator name makes the whole file unloadable.
void appendJsonEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (U < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", U);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendCommon(std::string &Out, const char *Name, const char *Ph,
                  uint64_t TsNs, unsigned Tid) {
  Out += "{\"name\":\"";
  Out += Name;
  Out += "\",\"cat\":\"gc\",\"ph\":\"";
  Out += Ph;
  Out += "\",\"pid\":1,\"tid\":";
  appendU64(Out, Tid);
  Out += ",\"ts\":";
  appendUs(Out, TsNs);
}

void appendThreadName(std::string &Out, unsigned Tid, const std::string &Name,
                      bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  Out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
  appendU64(Out, Tid);
  Out += ",\"args\":{\"name\":\"";
  appendJsonEscaped(Out, Name);
  Out += "\"}}";
}

} // namespace

std::string TraceExporter::render(const EventRecorder &R,
                                  const std::string &SessionName) {
  std::string Out;
  Out.reserve(4096 + R.size() * 512);
  Out += "{\"traceEvents\":[\n";

  bool First = true;
  // Process naming metadata: the user-supplied session name (Options::Name)
  // labels the whole process track. User-controlled, so escaped.
  if (!SessionName.empty()) {
    First = false;
    Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"args\":{\"name\":\"";
    appendJsonEscaped(Out, SessionName);
    Out += "\"}}";
  }
  // Track naming metadata: tid 0 is the collector's controlling thread;
  // worker tracks are named lazily below once we know how many exist.
  appendThreadName(Out, 0, "GC", First);
  unsigned MaxWorkerTid = 0;
  // Mutator park spans (multi-mutator runtime) live on their own tid
  // range, clear of any plausible worker count.
  constexpr unsigned MutatorTidBase = 1000;
  unsigned MaxMutatorTid = 0;

  for (size_t I = 0; I < R.size(); ++I) {
    const GcEvent &E = R.event(I);

    // The collection itself.
    std::string Name = gcGenerationName(E.Gen);
    Name += " gc #";
    char SeqBuf[24];
    std::snprintf(SeqBuf, sizeof(SeqBuf), "%" PRIu64, E.Seq);
    Name += SeqBuf;
    Out += ",\n";
    appendCommon(Out, Name.c_str(), "X", E.BeginNs, 0);
    Out += ",\"dur\":";
    appendUs(Out, E.PauseNs);
    Out += ",\"args\":{\"trigger\":\"";
    Out += gcTriggerName(E.Trigger);
    Out += "\",\"bytes_copied\":";
    appendU64(Out, E.BytesCopied);
    Out += ",\"objects_copied\":";
    appendU64(Out, E.ObjectsCopied);
    Out += ",\"bytes_promoted\":";
    appendU64(Out, E.BytesPromoted);
    Out += ",\"bytes_pretenured\":";
    appendU64(Out, E.BytesPretenured);
    Out += ",\"frames_at_gc\":";
    appendU64(Out, E.FramesAtGC);
    Out += ",\"frames_scanned\":";
    appendU64(Out, E.FramesScanned);
    Out += ",\"frames_reused\":";
    appendU64(Out, E.FramesReused);
    Out += ",\"ssb_entries\":";
    appendU64(Out, E.SsbEntriesProcessed);
    Out += ",\"dirty_cards\":";
    appendU64(Out, E.DirtyCards);
    Out += ",\"cards_scanned\":";
    appendU64(Out, E.CardsScanned);
    Out += ",\"crossing_map_updates\":";
    appendU64(Out, E.CrossingMapUpdates);
    Out += ",\"hybrid_switched\":";
    Out += E.HybridSwitched ? "true" : "false";
    Out += ",\"workers\":";
    appendU64(Out, E.Workers);
    Out += ",\"worker_faults\":";
    appendU64(Out, E.WorkerFaults);
    Out += ",\"serial_recovery\":";
    Out += E.SerialRecovery ? "true" : "false";
    Out += ",\"engine_failover\":";
    Out += E.EngineFailover ? "true" : "false";
    Out += "}}";

    // Phase breakdown, nested inside the collection on the same track.
    for (unsigned P = 0; P < NumGcPhases; ++P) {
      if (E.PhaseDurNs[P] == 0 && E.PhaseBeginNs[P] == 0)
        continue;
      Out += ",\n";
      appendCommon(Out, gcPhaseName(static_cast<GcPhase>(P)), "X",
                   E.PhaseBeginNs[P], 0);
      Out += ",\"dur\":";
      appendUs(Out, E.PhaseDurNs[P]);
      Out += "}";
    }

    // Per-worker evacuation spans on their own tracks.
    for (const GcWorkerSpan &W : E.WorkerSpans) {
      unsigned Tid = W.Index + 1;
      if (Tid > MaxWorkerTid)
        MaxWorkerTid = Tid;
      std::string WName = W.Faulted ? "evacuate (faulted)" : "evacuate";
      Out += ",\n";
      appendCommon(Out, WName.c_str(), "X", W.BeginNs, Tid);
      Out += ",\"dur\":";
      appendUs(Out, W.EndNs >= W.BeginNs ? W.EndNs - W.BeginNs : 0);
      Out += ",\"args\":{\"gc\":";
      appendU64(Out, E.Seq);
      Out += ",\"bytes_copied\":";
      appendU64(Out, W.BytesCopied);
      Out += ",\"objects_copied\":";
      appendU64(Out, W.ObjectsCopied);
      Out += "}}";
    }

    // Per-mutator safepoint park spans (multi-mutator runtime) on their
    // own tracks: each shows the window the thread sat parked while this
    // collection's stop-the-world operation ran.
    for (const GcWorkerSpan &M : E.MutatorSpans) {
      unsigned Tid = MutatorTidBase + M.Index;
      if (Tid > MaxMutatorTid)
        MaxMutatorTid = Tid;
      Out += ",\n";
      appendCommon(Out, "safepoint park", "X", M.BeginNs, Tid);
      Out += ",\"dur\":";
      appendUs(Out, M.EndNs >= M.BeginNs ? M.EndNs - M.BeginNs : 0);
      Out += ",\"args\":{\"gc\":";
      appendU64(Out, E.Seq);
      Out += "}}";
    }
  }

  // Pretenure-decision audits as global instant events at ts 0 (the flip
  // happens at collector construction, before the telemetry epoch matters).
  for (const PretenureAudit &A : R.audits()) {
    std::string Name = "pretenure site #";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%u", A.SiteId);
    Name += Buf;
    Out += ",\n";
    appendCommon(Out, Name.c_str(), "i", 0, 0);
    Out += ",\"s\":\"g\",\"args\":{\"pretenured\":";
    Out += A.Pretenured ? "true" : "false";
    Out += ",\"eliminate_scan\":";
    Out += A.EliminateScan ? "true" : "false";
    std::snprintf(Buf, sizeof(Buf), ",\"old_fraction\":%.4f", A.OldFraction);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf), ",\"threshold\":%.4f", A.Threshold);
    Out += Buf;
    Out += ",\"alloc_bytes\":";
    appendU64(Out, A.AllocBytes);
    Out += ",\"alloc_count\":";
    appendU64(Out, A.AllocCount);
    Out += ",\"survived_first_gc\":";
    appendU64(Out, A.SurvivedFirstGC);
    Out += "}}";
  }

  for (const EventRecorder::WorkerFault &F : R.faults()) {
    Out += ",\n";
    appendCommon(Out, "worker fault", "i", 0, F.WorkerIndex + 1);
    Out += ",\"s\":\"t\",\"args\":{\"gc\":";
    appendU64(Out, F.Seq);
    Out += "}}";
  }

  // Watchdog barks as global instants at the stall's detection time — the
  // structured diagnostic a stalled run leaves behind even when it never
  // reaches a clean exit.
  for (const WatchdogBark &B : R.barks()) {
    Out += ",\n";
    appendCommon(Out, "watchdog bark", "i", B.WhenNs, 0);
    Out += ",\"s\":\"g\",\"args\":{\"kind\":\"";
    Out += watchdogBarkKindName(B.What);
    Out += "\",\"seq\":";
    appendU64(Out, B.Seq);
    Out += ",\"deadline_us\":";
    appendU64(Out, B.DeadlineMicros);
    Out += ",\"elapsed_us\":";
    appendU64(Out, B.ElapsedMicros);
    Out += ",\"policy\":\"";
    Out += watchdogPolicyName(B.Policy);
    Out += "\",\"phase\":\"";
    Out += B.PhaseOrdinal < NumGcPhases
               ? gcPhaseName(static_cast<GcPhase>(B.PhaseOrdinal))
               : "none";
    Out += "\",\"mutators_parked\":";
    appendU64(Out, B.MutatorsParked);
    Out += ",\"mutators_expected\":";
    appendU64(Out, B.MutatorsExpected);
    // The free-form diagnostic the supervisor captured at expiry (heap
    // state, stalled-thread census). It is multi-line text, so it MUST go
    // through the escaper.
    Out += ",\"detail\":\"";
    appendJsonEscaped(Out, B.Detail);
    Out += "\"}}";
  }

  for (unsigned Tid = 1; Tid <= MaxWorkerTid; ++Tid) {
    std::string Name = "evac worker ";
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%u", Tid - 1);
    Name += Buf;
    appendThreadName(Out, Tid, Name, First);
  }
  for (unsigned Tid = MutatorTidBase; Tid <= MaxMutatorTid; ++Tid) {
    std::string Name = "mutator ";
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "%u", Tid - MutatorTidBase);
    Name += Buf;
    appendThreadName(Out, Tid, Name, First);
  }

  Out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":";
  appendU64(Out, R.size());
  Out += ",\"dropped\":";
  appendU64(Out, R.dropped());
  Out += "}}\n";
  return Out;
}

bool TraceExporter::writeFile(const EventRecorder &R, const std::string &Path,
                              const std::string &SessionName) {
  std::string Json = render(R, SessionName);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

} // namespace tilgc
