//===- observe/GcEvent.h - Per-collection telemetry record ------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-collection event record of the telemetry plane (DESIGN.md
/// "Beyond the paper: GC telemetry"). Every minor and major collection of
/// either collector emits one GcEvent: what triggered it, how long each
/// phase took, and the deterministic work counters (bytes copied/promoted/
/// pretenured, frames scanned vs reused) that must be identical across
/// GcThreads settings. Timing fields are wall-clock and naturally vary;
/// consumers that diff event streams compare only the deterministic
/// fields.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_GCEVENT_H
#define TILGC_OBSERVE_GCEVENT_H

#include <cstdint>
#include <vector>

namespace tilgc {

/// Which generation a collection processed.
enum class GcGeneration : uint8_t { Minor, Major };

/// Why a collection started.
enum class GcTrigger : uint8_t {
  /// Mutator called collect() directly.
  Explicit,
  /// Nursery bump allocation failed (the common minor-GC cause).
  NurseryFull,
  /// Tenured free space could not absorb the next nursery-load (the
  /// pressure-chained major, before or after a minor).
  TenuredPressure,
  /// A pretenured-site allocation found the tenured generation full.
  PretenuredSiteFull,
  /// Large-object allocation crossed the budget / hard-limit pre-flight.
  LargeObjectPressure,
  /// OOM escalation ladder: the post-minor retry failed and escalated.
  OomLadder,
  /// Semispace active space exhausted (every semispace allocation GC).
  SpaceFull,
};

/// Collection phases stamped into events (and exported as one
/// chrome://tracing complete-event each).
enum class GcPhase : uint8_t {
  StackScan,   ///< Shadow-stack + register root scan (paper GC-stack).
  SsbFilter,   ///< Heap-side root gathering: SSB filter, pretenured
               ///< region scan, new large objects.
  CardScan,    ///< Dirty-card sweep through the crossing map (CardMarking
               ///< and post-switch Hybrid barriers).
  RootHandoff, ///< Handing root spans to the evacuation engine.
  Copy,        ///< Evacuation drain (paper GC-copy).
  Resize,      ///< Space reservation / post-collection resize + sweeps.
  Mark,        ///< Mark-compact majors: parallel heap trace.
  Fixup,       ///< Mark-compact majors: pointer rewrite through the break
               ///< table and young forwarding headers.
  Compact,     ///< Mark-compact majors: plan, slides, pads, promotion
               ///< copies, crossing-map rebuild.
  SafepointWait, ///< Multi-mutator runtime: time the collecting thread
                 ///< spent waiting for every other mutator to park at its
                 ///< allocation poll. Always zero in single-mutator mode.
  IncrementalMark, ///< Pause-budget mode: one bounded mark slice (or the
                   ///< marking portion of the cycle-finishing collection).
};
inline constexpr unsigned NumGcPhases = 11;

/// Display name of a phase (trace export, reports).
const char *gcPhaseName(GcPhase P);
/// Display name of a trigger.
const char *gcTriggerName(GcTrigger T);
/// Display name of a generation.
const char *gcGenerationName(GcGeneration G);

/// One parallel-evacuation worker's activity inside a collection, for the
/// exporter's per-worker tracks. Stamped only while an observer is
/// registered.
struct GcWorkerSpan {
  uint32_t Index = 0;
  uint64_t BeginNs = 0; ///< Process-epoch-relative (GcTelemetry::nowNs).
  uint64_t EndNs = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0;
  bool Faulted = false;
};

/// One collection, fully described. Assembled by the collector between
/// GcTelemetry::beginCollection / endCollection and handed to observers by
/// value-reference at onGcEnd (the reference dies with the callback; copy
/// what you keep — EventRecorder does).
struct GcEvent {
  // --- Deterministic fields (identical across GcThreads) ---------------
  uint64_t Seq = 0; ///< 1-based; equals GcStats::NumGC after this GC.
  GcGeneration Gen = GcGeneration::Minor;
  GcTrigger Trigger = GcTrigger::Explicit;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0;
  /// Bytes that landed in the tenured generation: equals BytesCopied for
  /// promote-all minors; the tenured used-bytes delta under aged tenuring
  /// (which may include parallel block padding); 0 for majors (everything
  /// moves — BytesCopied is the figure there).
  uint64_t BytesPromoted = 0;
  /// Pretenured-site bytes allocated since the previous collection.
  uint64_t BytesPretenured = 0;
  uint64_t FramesAtGC = 0;   ///< Stack depth when the collection ran.
  uint64_t FramesScanned = 0;
  uint64_t FramesReused = 0; ///< §5 marker hits served from the cache.
  /// Write-barrier entries filtered into roots by this collection.
  uint64_t SsbEntriesProcessed = 0;
  /// Crossing-map records since the previous collection (pretenured
  /// allocations plus objects promoted by this collection; pad fillers are
  /// recorded in the map but not counted, since padding varies with thread
  /// count). Deterministic across GcThreads.
  uint64_t CrossingMapUpdates = 0;
  /// True when the Hybrid barrier degraded SSB→cards since the previous
  /// collection. Mutator-side and placement-independent: deterministic.
  bool HybridSwitched = false;

  // --- Engine-dependent counters (like BytesPromoted, excluded from the
  // deterministic slice): dirty-card geometry depends on where promotion
  // placed objects, which varies with the parallel evacuator's block
  // scheduling. Serial runs are still deterministic run-to-run. ----------
  /// Dirty cards pending at the start of this collection (minors only).
  uint64_t DirtyCards = 0;
  /// Dirty cards actually walked by this collection's card sweep.
  uint64_t CardsScanned = 0;
  /// Mark-compact majors: physically relocated bytes (slid tenured runs
  /// plus promoted young survivors). Layout-dependent — where the parallel
  /// evacuator placed promotions decides which regions are dense — so
  /// engine-dependent, like the card counters.
  uint64_t BytesMoved = 0;
  /// Mark-compact majors: region census at plan time.
  uint32_t RegionsTotal = 0;
  uint32_t RegionsDense = 0;
  uint32_t RegionsEvacuated = 0;

  // --- Configuration / outcome -----------------------------------------
  uint32_t Workers = 1; ///< Evacuation threads configured.
  uint32_t WorkerFaults = 0;
  bool SerialRecovery = false; ///< Evacuation finished by the serial drain.
  /// A mark-/plan-phase fault aborted the mark-compact engine and a
  /// semispace evacuation finished this major. Deterministic under seeded
  /// fault injection (the abort fires at a fixed crossing), so event-diff
  /// consumers may pin it.
  bool EngineFailover = false;

  // --- Timing (wall-clock; varies run to run) ---------------------------
  uint64_t BeginNs = 0; ///< Process-epoch-relative.
  uint64_t EndNs = 0;
  uint64_t PauseNs = 0; ///< EndNs - BeginNs.
  /// First entry into each phase (0 = phase never ran).
  uint64_t PhaseBeginNs[NumGcPhases] = {};
  /// Accumulated time inside each phase (a phase may be entered twice).
  uint64_t PhaseDurNs[NumGcPhases] = {};

  /// Per-worker activity (parallel evacuation, armed telemetry only).
  std::vector<GcWorkerSpan> WorkerSpans;

  /// Per-mutator park spans for the safepoint that preceded this
  /// collection (multi-mutator runtime, armed telemetry only). Index is
  /// the mutator's thread index; Begin is when that thread parked, End is
  /// when the world resumed. Empty in single-mutator mode, so the
  /// deterministic event slice is unchanged there.
  std::vector<GcWorkerSpan> MutatorSpans;

  /// Sum of the per-phase durations — the invariant suite checks this
  /// never exceeds PauseNs.
  uint64_t phaseTotalNs() const {
    uint64_t Sum = 0;
    for (uint64_t D : PhaseDurNs)
      Sum += D;
    return Sum;
  }
};

} // namespace tilgc

#endif // TILGC_OBSERVE_GCEVENT_H
