//===- observe/EventRecorder.h - Bounded in-memory GC recorder --*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A GcObserver that keeps the last N collection events (plus every
/// pretenure audit and worker fault — those are rare and small) in a
/// fixed-capacity ring. The memory bound is Capacity events regardless of
/// how long the process runs; once full, the oldest event is overwritten
/// and counted in dropped(). The trace exporter reads recorded events
/// oldest-first.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_EVENTRECORDER_H
#define TILGC_OBSERVE_EVENTRECORDER_H

#include "observe/GcObserver.h"

#include <cstddef>
#include <mutex>
#include <vector>

namespace tilgc {

class EventRecorder : public GcObserver {
public:
  struct WorkerFault {
    uint64_t Seq = 0;
    uint32_t WorkerIndex = 0;
  };

  explicit EventRecorder(size_t Capacity = 4096)
      : Cap(Capacity ? Capacity : 1) {
    Ring.reserve(Cap < 64 ? Cap : 64);
  }

  void onGcEnd(const GcEvent &E) override {
    if (Ring.size() < Cap) {
      Ring.push_back(E);
      return;
    }
    Ring[Head] = E;
    Head = (Head + 1) % Cap;
    Dropped++;
  }

  void onPretenureDecision(const PretenureAudit &A) override {
    Audits.push_back(A);
  }

  void onWorkerFault(uint64_t Seq, uint32_t WorkerIndex) override {
    Faults.push_back({Seq, WorkerIndex});
  }

  void onWatchdogBark(const WatchdogBark &B) override {
    // Delivered on the watchdog supervisor thread while the collector (or
    // a stopping mutator) is stalled elsewhere — the one callback that
    // needs its own lock against readers.
    std::lock_guard<std::mutex> L(BarkM);
    Barks.push_back(B);
  }

  size_t capacity() const { return Cap; }
  size_t size() const { return Ring.size(); }
  /// Events overwritten after the ring filled.
  uint64_t dropped() const { return Dropped; }

  /// I-th retained event, oldest first.
  const GcEvent &event(size_t I) const { return Ring[(Head + I) % Cap]; }

  const std::vector<PretenureAudit> &audits() const { return Audits; }
  const std::vector<WorkerFault> &faults() const { return Faults; }

  /// Snapshot of the recorded barks (copied under the bark lock; callers
  /// read after the stall resolved, so the copy is cheap and safe).
  std::vector<WatchdogBark> barks() const {
    std::lock_guard<std::mutex> L(BarkM);
    return Barks;
  }

  void clear() {
    Ring.clear();
    Head = 0;
    Dropped = 0;
    Audits.clear();
    Faults.clear();
    std::lock_guard<std::mutex> L(BarkM);
    Barks.clear();
  }

private:
  size_t Cap;
  size_t Head = 0;
  uint64_t Dropped = 0;
  std::vector<GcEvent> Ring;
  std::vector<PretenureAudit> Audits;
  std::vector<WorkerFault> Faults;
  mutable std::mutex BarkM;
  std::vector<WatchdogBark> Barks;
};

} // namespace tilgc

#endif // TILGC_OBSERVE_EVENTRECORDER_H
