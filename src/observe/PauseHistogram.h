//===- observe/PauseHistogram.h - log2 pause-time histogram -----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-bucket pause histogram. Buckets are powers of two of nanoseconds:
/// bucket B holds pauses in [2^B, 2^(B+1)) ns, with bucket 0 also catching
/// sub-1ns readings. 64 buckets cover every representable uint64 pause, so
/// record() never saturates or drops. Alongside the buckets we keep exact
/// min/max and the total count/sum, so min()/max() are exact and only the
/// interior percentiles are bucket-resolution (~2x) estimates.
///
/// The histogram is always armed — it is one array increment per
/// *collection* (never per allocation), which is the price the telemetry
/// plane accepts for pause percentiles being available without any
/// observer registered (the bench tables report p99 unconditionally).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_PAUSEHISTOGRAM_H
#define TILGC_OBSERVE_PAUSEHISTOGRAM_H

#include <cstdint>

namespace tilgc {

class PauseHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void record(uint64_t PauseNs) {
    Buckets[bucketFor(PauseNs)]++;
    Count++;
    SumNs += PauseNs;
    if (PauseNs < MinNs)
      MinNs = PauseNs;
    if (PauseNs > MaxNs)
      MaxNs = PauseNs;
  }

  uint64_t count() const { return Count; }
  uint64_t sumNs() const { return SumNs; }
  uint64_t bucketCount(unsigned B) const {
    return B < NumBuckets ? Buckets[B] : 0;
  }

  /// Exact extremes (0 when empty).
  uint64_t minNs() const { return Count ? MinNs : 0; }
  uint64_t maxNs() const { return Count ? MaxNs : 0; }

  /// Percentile estimate: find the bucket holding the Q-quantile sample and
  /// return its upper edge (a conservative "no worse than" figure),
  /// clamped to the exact observed max. Q in [0,1].
  uint64_t percentileNs(double Q) const {
    if (Count == 0)
      return 0;
    if (Q <= 0.0)
      return minNs();
    // Rank of the percentile sample, 1-based, ceil(Q * Count).
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
    if (static_cast<double>(Rank) < Q * static_cast<double>(Count))
      Rank++;
    if (Rank < 1)
      Rank = 1;
    if (Rank > Count)
      Rank = Count;
    // The rank-1 sample IS the tracked minimum and the rank-Count sample IS
    // the tracked maximum; both are exact, so never widen them to a bucket
    // edge. This is what keeps a single-sample histogram (the common "one
    // major ran" bench case) reporting the sample itself at every quantile
    // instead of its bucket's upper edge.
    if (Rank <= 1)
      return minNs();
    if (Rank >= Count)
      return maxNs();
    uint64_t Seen = 0;
    for (unsigned B = 0; B < NumBuckets; ++B) {
      Seen += Buckets[B];
      if (Seen >= Rank) {
        uint64_t Edge = upperEdgeNs(B);
        return Edge < MaxNs ? Edge : MaxNs;
      }
    }
    return MaxNs; // Unreachable: Seen reaches Count by the last bucket.
  }

  uint64_t p50Ns() const { return percentileNs(0.50); }
  uint64_t p90Ns() const { return percentileNs(0.90); }
  uint64_t p99Ns() const { return percentileNs(0.99); }
  uint64_t meanNs() const { return Count ? SumNs / Count : 0; }

  void reset() { *this = PauseHistogram(); }

  /// Merge another histogram into this one (bench aggregation).
  void merge(const PauseHistogram &O) {
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B] += O.Buckets[B];
    Count += O.Count;
    SumNs += O.SumNs;
    if (O.Count) {
      if (O.MinNs < MinNs)
        MinNs = O.MinNs;
      if (O.MaxNs > MaxNs)
        MaxNs = O.MaxNs;
    }
  }

  static unsigned bucketFor(uint64_t PauseNs) {
    if (PauseNs < 2)
      return PauseNs ? 1 : 0; // [0,1) -> 0, [1,2) would be log2=0 too; keep
                              // bucket 0 = {0}, bucket 1 = {1} for exactness
                              // at the bottom where log2 degenerates.
    unsigned B = 63 - static_cast<unsigned>(__builtin_clzll(PauseNs));
    return B; // floor(log2), so value v lands in [2^B, 2^(B+1)).
  }

  /// Inclusive upper edge of bucket B (largest value that maps to it).
  static uint64_t upperEdgeNs(unsigned B) {
    if (B == 0)
      return 0;
    if (B >= 63)
      return ~0ull;
    return (1ull << (B + 1)) - 1;
  }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t SumNs = 0;
  uint64_t MinNs = ~0ull;
  uint64_t MaxNs = 0;
};

} // namespace tilgc

#endif // TILGC_OBSERVE_PAUSEHISTOGRAM_H
