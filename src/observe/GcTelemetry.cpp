//===- observe/GcTelemetry.cpp - Per-collector telemetry plane ------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "observe/GcTelemetry.h"

#include <chrono>

namespace tilgc {

const char *gcPhaseName(GcPhase P) {
  switch (P) {
  case GcPhase::StackScan:
    return "stack-scan";
  case GcPhase::SsbFilter:
    return "ssb-filter";
  case GcPhase::CardScan:
    return "card-scan";
  case GcPhase::RootHandoff:
    return "root-handoff";
  case GcPhase::Copy:
    return "copy";
  case GcPhase::Resize:
    return "resize";
  case GcPhase::Mark:
    return "mark";
  case GcPhase::Fixup:
    return "fixup";
  case GcPhase::Compact:
    return "compact";
  case GcPhase::SafepointWait:
    return "safepoint-wait";
  case GcPhase::IncrementalMark:
    return "incremental-mark";
  }
  return "?";
}

const char *gcTriggerName(GcTrigger T) {
  switch (T) {
  case GcTrigger::Explicit:
    return "explicit";
  case GcTrigger::NurseryFull:
    return "nursery-full";
  case GcTrigger::TenuredPressure:
    return "tenured-pressure";
  case GcTrigger::PretenuredSiteFull:
    return "pretenured-site-full";
  case GcTrigger::LargeObjectPressure:
    return "large-object-pressure";
  case GcTrigger::OomLadder:
    return "oom-ladder";
  case GcTrigger::SpaceFull:
    return "space-full";
  }
  return "?";
}

const char *gcGenerationName(GcGeneration G) {
  return G == GcGeneration::Minor ? "minor" : "major";
}

uint64_t GcTelemetry::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch)
          .count());
}

void GcTelemetry::beginCollection(GcGeneration Gen, GcTrigger Trigger,
                                  uint64_t Seq) {
  InCollection = true;
  if (TILGC_UNLIKELY(armed())) {
    // Reset the event in place, keeping the span allocations.
    Current.WorkerSpans.clear();
    std::vector<GcWorkerSpan> Spans = std::move(Current.WorkerSpans);
    Current.MutatorSpans.clear();
    std::vector<GcWorkerSpan> MSpans = std::move(Current.MutatorSpans);
    Current = GcEvent();
    Current.WorkerSpans = std::move(Spans);
    Current.MutatorSpans = std::move(MSpans);
    Current.Seq = Seq;
    Current.Gen = Gen;
    Current.Trigger = Trigger;
    Current.BeginNs = nowNs();
    for (uint64_t &E : PhaseEnterNs)
      E = 0;
    consumePendingSafepoint();
    for (GcObserver *O : Observers)
      O->onGcBegin(Current);
  } else {
    // Disarmed: only what the always-on histogram needs.
    Current.Gen = Gen;
    Current.BeginNs = nowNs();
    consumePendingSafepoint();
  }
}

void GcTelemetry::consumePendingSafepoint() {
  if (TILGC_LIKELY(!PendingSafepoint))
    return;
  PendingSafepoint = false;
  // Fold the rendezvous into the pause window: the mutators were stopped
  // from WaitBeginNs, so the collection's observable pause starts there.
  // This also keeps phaseTotalNs() <= PauseNs with the new phase counted.
  if (PendingWaitBeginNs != 0 && PendingWaitBeginNs < Current.BeginNs)
    Current.BeginNs = PendingWaitBeginNs;
  if (armed()) {
    unsigned I = static_cast<unsigned>(GcPhase::SafepointWait);
    Current.PhaseBeginNs[I] = PendingWaitBeginNs;
    Current.PhaseDurNs[I] = PendingWaitEndNs >= PendingWaitBeginNs
                                ? PendingWaitEndNs - PendingWaitBeginNs
                                : 0;
    Current.MutatorSpans = std::move(PendingMutatorSpans);
  }
  PendingMutatorSpans.clear();
}

void GcTelemetry::endCollection() {
  if (!InCollection)
    return;
  Current.EndNs = nowNs();
  Current.PauseNs =
      Current.EndNs >= Current.BeginNs ? Current.EndNs - Current.BeginNs : 0;
  histogram(Current.Gen).record(Current.PauseNs);
  if (TILGC_UNLIKELY(armed()))
    for (GcObserver *O : Observers)
      O->onGcEnd(Current);
  InCollection = false;
}

void GcTelemetry::enterPhaseSlow(GcPhase P) {
  unsigned I = static_cast<unsigned>(P);
  uint64_t Now = nowNs();
  PhaseEnterNs[I] = Now;
  if (Current.PhaseBeginNs[I] == 0)
    Current.PhaseBeginNs[I] = Now;
}

void GcTelemetry::exitPhaseSlow(GcPhase P) {
  unsigned I = static_cast<unsigned>(P);
  if (PhaseEnterNs[I] == 0)
    return; // Exit without matching enter (armed mid-phase): ignore.
  Current.PhaseDurNs[I] += nowNs() - PhaseEnterNs[I];
  PhaseEnterNs[I] = 0;
}

void GcTelemetry::notePretenureDecision(const PretenureAudit &A) {
  if (TILGC_UNLIKELY(armed()))
    for (GcObserver *O : Observers)
      O->onPretenureDecision(A);
}

void GcTelemetry::noteWorkerFault(uint32_t WorkerIndex) {
  if (TILGC_UNLIKELY(armed()))
    for (GcObserver *O : Observers)
      O->onWorkerFault(Current.Seq, WorkerIndex);
}

void GcTelemetry::noteWatchdogBark(const WatchdogBark &B) {
  // Supervisor-thread dispatch: reading Current or the phase stamps here
  // would race the collecting thread, so only the bark itself travels.
  if (TILGC_UNLIKELY(armed()))
    for (GcObserver *O : Observers)
      O->onWatchdogBark(B);
}

void GcTelemetry::noteSafepointWait(uint64_t WaitBeginNs, uint64_t WaitEndNs,
                                    std::vector<GcWorkerSpan> ParkSpans) {
  SafepointWaits.record(WaitEndNs >= WaitBeginNs ? WaitEndNs - WaitBeginNs
                                                 : 0);
  PendingSafepoint = true;
  PendingWaitBeginNs = WaitBeginNs;
  PendingWaitEndNs = WaitEndNs;
  if (TILGC_UNLIKELY(armed()))
    PendingMutatorSpans = std::move(ParkSpans);
}

void GcTelemetry::clearPendingSafepoint() {
  PendingSafepoint = false;
  PendingMutatorSpans.clear();
}

} // namespace tilgc
