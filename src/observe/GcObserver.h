//===- observe/GcObserver.h - Telemetry hook interface ----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observer interface of the telemetry plane. Register one via
/// MutatorConfig::Observer (or CollectorEnv::Observers when driving a
/// collector directly); all callbacks run on the thread that triggered the
/// collection — never on evacuation workers — so implementations need no
/// internal locking against the GC itself.
///
/// Callback timing:
///  - onGcBegin: after the trigger is classified, before any phase runs.
///    The event carries Seq/Gen/Trigger; counters are not yet final.
///  - onGcEnd: after the collection completed (including resize); the
///    event is complete. The reference is only valid for the duration of
///    the call.
///  - onPretenureDecision: when a profile-driven PretenureFlag flips at
///    collector construction (§6 profile application), once per site,
///    with the promotion-rate evidence that justified it.
///  - onWorkerFault: after a parallel-evacuation worker faulted and the
///    pass completed via serial recovery — reported from the controlling
///    thread once the pool has joined, one call per faulted worker.
///  - onWatchdogBark: THE exception to the threading rule above — it runs
///    on the watchdog's supervisor thread while the stalled window owner
///    is still inside the window. Implementations must be safe against
///    concurrent collection work: touch only your own synchronized state
///    (EventRecorder takes a mutex) and return quickly.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_GCOBSERVER_H
#define TILGC_OBSERVE_GCOBSERVER_H

#include "observe/GcEvent.h"
#include "support/Watchdog.h"

#include <cstdint>

namespace tilgc {

/// Evidence behind one pretenuring-decision flip, mirrored from the
/// profiler's per-site statistics at the moment the flag changed.
struct PretenureAudit {
  uint32_t SiteId = 0;
  bool Pretenured = false;    ///< New flag value (true = allocate tenured).
  bool EliminateScan = false; ///< §7.2 scan elimination also granted.
  double OldFraction = 0.0;   ///< Promotion rate that drove the decision.
  double Threshold = 0.0;     ///< Configured OldFraction cut-off.
  uint64_t AllocBytes = 0;    ///< Profiled bytes allocated at the site.
  uint64_t AllocCount = 0;    ///< Profiled allocations at the site.
  uint64_t SurvivedFirstGC = 0; ///< Bytes that survived their first GC.
};

class GcObserver {
public:
  virtual ~GcObserver() = default;

  virtual void onGcBegin(const GcEvent &E) { (void)E; }
  virtual void onGcEnd(const GcEvent &E) { (void)E; }
  virtual void onPretenureDecision(const PretenureAudit &A) { (void)A; }
  /// WorkerIndex faulted during collection Seq; the collection still
  /// completed (serial recovery).
  virtual void onWorkerFault(uint64_t Seq, uint32_t WorkerIndex) {
    (void)Seq;
    (void)WorkerIndex;
  }
  /// A supervised window (GC cycle or safepoint rendezvous) outlived its
  /// deadline. Runs on the SUPERVISOR thread (see file comment); the
  /// reference is only valid for the duration of the call.
  virtual void onWatchdogBark(const WatchdogBark &B) { (void)B; }
};

} // namespace tilgc

#endif // TILGC_OBSERVE_GCOBSERVER_H
