//===- observe/GcTelemetry.h - Per-collector telemetry plane ----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// GcTelemetry is the per-collector hub of the observation plane: it owns
/// the always-on pause histograms, assembles the in-flight GcEvent while a
/// collection runs, and dispatches registered GcObservers.
///
/// Cost discipline (mirrors support/FaultInjector.h):
///  - Nothing on the allocation path, ever.
///  - Per collection with no observer: two steady_clock reads plus one
///    histogram increment (the bench tables report pause percentiles
///    unconditionally, so histograms cannot be gated), and one relaxed
///    load deciding that everything else — phase stamps, event assembly,
///    worker spans, callback dispatch — is skipped.
///  - Phase scopes and worker stamps check `armed()` (relaxed) before
///    touching the clock.
///
/// Threading: begin/end/phase/dispatch run only on the thread driving the
/// collection. Parallel-evacuation workers stamp their own spans into
/// worker-local storage; the controlling thread merges them after the
/// pool joins, so observers never run concurrently with workers.
/// Collections never nest (a pressure-chained major runs strictly before
/// or after the minor's event window), so one in-flight event suffices.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBSERVE_GCTELEMETRY_H
#define TILGC_OBSERVE_GCTELEMETRY_H

#include "observe/GcEvent.h"
#include "observe/GcObserver.h"
#include "support/Watchdog.h"
#include "observe/PauseHistogram.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace tilgc {

class GcTelemetry {
public:
  GcTelemetry() { Current.WorkerSpans.reserve(8); }

  /// Monotonic nanoseconds since the first telemetry use in this process.
  /// Static so evacuation workers can stamp spans without a telemetry
  /// reference.
  static uint64_t nowNs();

  void addObserver(GcObserver *O) {
    if (!O)
      return;
    Observers.push_back(O);
    Armed.store(true, std::memory_order_relaxed);
  }

  /// True when at least one observer is registered. Relaxed: arming
  /// happens before the mutator runs; workers only ever see a stable
  /// value during a collection.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  // --- Collection lifecycle --------------------------------------------

  /// Open the event for collection number Seq (== GcStats::NumGC after the
  /// increment). Always call it; the disarmed path only notes Gen and the
  /// begin timestamp for the histogram.
  void beginCollection(GcGeneration Gen, GcTrigger Trigger, uint64_t Seq);

  /// Close the event: computes the pause, feeds the per-generation
  /// histogram, and (armed) dispatches onGcEnd.
  void endCollection();

  /// The in-flight event, or nullptr outside a collection or when
  /// disarmed. Collectors use this to fill counters without re-checking
  /// armed() at every site.
  GcEvent *currentEvent() {
    return InCollection && armed() ? &Current : nullptr;
  }

  // --- Phase accounting -------------------------------------------------

  void enterPhase(GcPhase P) {
    if (TILGC_UNLIKELY(LivePhasePub))
      LivePhase.store(static_cast<uint8_t>(P), std::memory_order_relaxed);
    if (TILGC_UNLIKELY(armed()) && InCollection)
      enterPhaseSlow(P);
  }
  void exitPhase(GcPhase P) {
    if (TILGC_UNLIKELY(LivePhasePub))
      LivePhase.store(255, std::memory_order_relaxed);
    if (TILGC_UNLIKELY(armed()) && InCollection)
      exitPhaseSlow(P);
  }

  /// RAII phase scope; no-op when disarmed.
  class PhaseScope {
  public:
    PhaseScope(GcTelemetry &T, GcPhase P) : Tel(T), Phase(P) {
      Tel.enterPhase(Phase);
    }
    ~PhaseScope() { Tel.exitPhase(Phase); }
    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    GcTelemetry &Tel;
    GcPhase Phase;
  };

  // --- Out-of-band notifications ---------------------------------------

  /// Dispatch a pretenuring-flip audit record (armed only; the caller
  /// fills the evidence).
  void notePretenureDecision(const PretenureAudit &A);

  /// Report a worker fault for the in-flight (or just-finished) event.
  /// Called from the controlling thread after the pool joined.
  void noteWorkerFault(uint32_t WorkerIndex);

  /// Record a completed stop-the-world rendezvous (multi-mutator runtime).
  /// Called by the stopping thread after every other mutator parked and
  /// before the stopped-world operation runs. Feeds the always-on
  /// safepoint-wait histogram; if a collection follows before
  /// clearPendingSafepoint(), its event absorbs the wait as the
  /// SafepointWait phase (with BeginNs extended back to WaitBeginNs so the
  /// phase-total <= pause invariant holds) and ParkSpans become
  /// GcEvent::MutatorSpans. Park spans are only kept while armed.
  void noteSafepointWait(uint64_t WaitBeginNs, uint64_t WaitEndNs,
                         std::vector<GcWorkerSpan> ParkSpans);

  /// Drop a pending safepoint record that no collection consumed (the
  /// stopped-world operation was a plain allocation, not a GC).
  void clearPendingSafepoint();

  /// Publish the in-flight GcPhase through a relaxed atomic the watchdog
  /// supervisor may read mid-collection. Enabled once, before any
  /// collection, when a GC deadline is configured; costs one predicted
  /// branch per phase transition when off.
  void enableLivePhase() { LivePhasePub = true; }
  /// Raw ordinal of the executing phase (255 = none). Safe from any
  /// thread; approximate by design — sibling scopes overwrite each other.
  uint8_t livePhaseOrdinal() const {
    return LivePhase.load(std::memory_order_relaxed);
  }

  /// Fan a watchdog bark out to every observer. Runs on the SUPERVISOR
  /// thread — the one documented exception to the collecting-thread
  /// dispatch rule (see GcObserver.h). Observers is append-only and fully
  /// built before mutators start, so unsynchronized iteration is safe.
  void noteWatchdogBark(const WatchdogBark &B);

  // --- Always-on aggregates --------------------------------------------

  const PauseHistogram &histogram(GcGeneration G) const {
    return G == GcGeneration::Minor ? MinorPauses : MajorPauses;
  }
  PauseHistogram &histogram(GcGeneration G) {
    return G == GcGeneration::Minor ? MinorPauses : MajorPauses;
  }

  /// Stop-the-world rendezvous waits (multi-mutator runtime; empty in
  /// single-mutator mode). Always on, like the pause histograms.
  const PauseHistogram &safepointHistogram() const { return SafepointWaits; }

private:
  void enterPhaseSlow(GcPhase P);
  void exitPhaseSlow(GcPhase P);
  void consumePendingSafepoint();

  std::atomic<bool> Armed{false};
  std::vector<GcObserver *> Observers;

  /// Live-phase publication for watchdog barks (see enableLivePhase).
  bool LivePhasePub = false;
  std::atomic<uint8_t> LivePhase{255};

  bool InCollection = false;
  GcEvent Current;
  uint64_t PhaseEnterNs[NumGcPhases] = {};

  // Safepoint rendezvous waiting to be claimed by the next collection.
  bool PendingSafepoint = false;
  uint64_t PendingWaitBeginNs = 0;
  uint64_t PendingWaitEndNs = 0;
  std::vector<GcWorkerSpan> PendingMutatorSpans;

  PauseHistogram MinorPauses;
  PauseHistogram MajorPauses;
  PauseHistogram SafepointWaits;
};

} // namespace tilgc

#endif // TILGC_OBSERVE_GCTELEMETRY_H
