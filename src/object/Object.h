//===- object/Object.h - Nearly tag-free object representation -*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TIL-style nearly tag-free heap object model.
///
/// TIL represents heap data as records, pointer arrays and non-pointer
/// arrays; integers are untagged words and floats are unboxed, so the
/// collector cannot tell pointers from non-pointers by inspection — it must
/// consult per-object pointer masks (for records), per-kind rules (arrays),
/// and, for the stack, the trace tables of src/stack.
///
/// Every object carries a two-word header:
///
///   word 0 (descriptor):
///     bit  0       forward tag (1 = object was copied; remaining bits hold
///                  the new payload address, which is 8-byte aligned)
///     bits 1..2    kind (Record / PtrArray / NonPtrArray)
///     bits 3..34   payload length in words (32 bits)
///     bits 35..58  record pointer mask (bit i set = field i is a pointer)
///   word 1 (metadata):
///     bits 0..31   allocation-site id (the paper's profiling build prepends
///                  this; we keep it unconditionally so every collector
///                  configuration pays identical header costs)
///     bits 32..61  birth stamp in KB of total allocation at birth
///     bits 62..63  minor-collection survival count (used only by the
///                  aged-tenuring ablation policy)
///
/// A \c Value is an untyped 64-bit machine word: an unboxed integer, the raw
/// bits of a double, or a pointer to an object's payload (the word after the
/// header). Values are only interpreted through the trace machinery.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_OBJECT_OBJECT_H
#define TILGC_OBJECT_OBJECT_H

#include "support/Compiler.h"

#include <cassert>
#include <cstdint>
#include <cstring>

namespace tilgc {

/// A machine word; the unit of all heap storage.
using Word = uint64_t;

/// Number of header words preceding every object's payload.
inline constexpr unsigned HeaderWords = 2;

/// Records are limited to the width of the header pointer mask. Larger
/// aggregates use pointer arrays (as TIL does for big structures).
inline constexpr unsigned MaxRecordFields = 24;

/// The three runtime representations TIL produces, plus the collector's
/// internal pad filler.
enum class ObjectKind : uint8_t {
  Record,      ///< Mixed fields; pointer-ness given by the header mask.
  PtrArray,    ///< Every element is a pointer (or the null value 0).
  NonPtrArray, ///< Raw words: unboxed ints, doubles, bytes.
  Pad,         ///< Dead filler words left by the parallel evacuator at the
               ///< unused tail of a per-worker copy block. Never allocated
               ///< by the mutator, never referenced; linear space walks skip
               ///< it. Its length field holds the TOTAL size in words
               ///< (including the descriptor word itself), so a gap as small
               ///< as one word is representable.
};

/// An untyped machine word. Pointer values address an object's payload.
class Value {
public:
  Value() : Bits(0) {}

  static Value fromBits(Word W) { return Value(W); }
  static Value fromInt(int64_t I) { return Value(static_cast<Word>(I)); }
  static Value fromDouble(double D) {
    Word W;
    std::memcpy(&W, &D, sizeof(W));
    return Value(W);
  }
  static Value fromPtr(Word *Payload) {
    return Value(reinterpret_cast<Word>(Payload));
  }
  /// The distinguished null pointer (used by workloads for nil).
  static Value null() { return Value(0); }

  Word bits() const { return Bits; }
  int64_t asInt() const { return static_cast<int64_t>(Bits); }
  double asDouble() const {
    double D;
    std::memcpy(&D, &Bits, sizeof(D));
    return D;
  }
  Word *asPtr() const { return reinterpret_cast<Word *>(Bits); }
  bool isNull() const { return Bits == 0; }

  friend bool operator==(Value A, Value B) { return A.Bits == B.Bits; }
  friend bool operator!=(Value A, Value B) { return A.Bits != B.Bits; }

private:
  explicit Value(Word W) : Bits(W) {}
  Word Bits;
};

static_assert(sizeof(Value) == sizeof(Word), "Value must be one word");

//===----------------------------------------------------------------------===//
// Descriptor word (header word 0)
//===----------------------------------------------------------------------===//

namespace header {

inline constexpr Word ForwardTag = 1;
inline constexpr unsigned KindShift = 1;
inline constexpr unsigned LengthShift = 3;
inline constexpr unsigned MaskShift = 35;
inline constexpr Word LengthMask = 0xFFFFFFFFULL;
inline constexpr Word PtrMaskMask = 0xFFFFFFULL;

/// Builds a descriptor word. \p LenWords is the payload length in words;
/// \p PtrMask is meaningful only for records.
inline Word make(ObjectKind Kind, uint32_t LenWords, uint32_t PtrMask = 0) {
  assert((Kind == ObjectKind::Record ? PtrMask >> MaxRecordFields == 0
                                     : PtrMask == 0) &&
         "pointer mask out of range");
  assert((Kind != ObjectKind::Record || LenWords <= MaxRecordFields) &&
         "record too wide for pointer mask");
  return (static_cast<Word>(Kind) << KindShift) |
         (static_cast<Word>(LenWords) << LengthShift) |
         (static_cast<Word>(PtrMask) << MaskShift);
}

inline bool isForwarded(Word Descriptor) { return Descriptor & ForwardTag; }

/// Builds a forwarding descriptor pointing at \p NewPayload.
inline Word makeForward(Word *NewPayload) {
  Word Bits = reinterpret_cast<Word>(NewPayload);
  assert((Bits & 7) == 0 && "payload must be 8-byte aligned");
  return Bits | ForwardTag;
}

inline Word *forwardTarget(Word Descriptor) {
  assert(isForwarded(Descriptor) && "not a forwarding descriptor");
  return reinterpret_cast<Word *>(Descriptor & ~ForwardTag);
}

inline ObjectKind kind(Word Descriptor) {
  assert(!isForwarded(Descriptor) && "reading kind of forwarded object");
  return static_cast<ObjectKind>((Descriptor >> KindShift) & 3);
}

inline uint32_t length(Word Descriptor) {
  assert(!isForwarded(Descriptor) && "reading length of forwarded object");
  return static_cast<uint32_t>((Descriptor >> LengthShift) & LengthMask);
}

inline uint32_t ptrMask(Word Descriptor) {
  assert(!isForwarded(Descriptor) && "reading mask of forwarded object");
  return static_cast<uint32_t>((Descriptor >> MaskShift) & PtrMaskMask);
}

/// Builds a pad descriptor covering \p TotalWords words of dead space
/// (descriptor word included; a 1-word pad is a bare descriptor).
inline Word makePad(uint32_t TotalWords) {
  assert(TotalWords >= 1 && "pad must cover its own descriptor");
  return (static_cast<Word>(ObjectKind::Pad) << KindShift) |
         (static_cast<Word>(TotalWords) << LengthShift);
}

inline bool isPad(Word Descriptor) {
  return !isForwarded(Descriptor) &&
         ((Descriptor >> KindShift) & 3) ==
             static_cast<Word>(ObjectKind::Pad);
}

/// Total words a pad descriptor covers.
inline uint32_t padWords(Word Descriptor) {
  assert(isPad(Descriptor) && "not a pad descriptor");
  return static_cast<uint32_t>((Descriptor >> LengthShift) & LengthMask);
}

} // namespace header

//===----------------------------------------------------------------------===//
// Metadata word (header word 1)
//===----------------------------------------------------------------------===//

namespace meta {

inline constexpr unsigned BirthShift = 32;
inline constexpr unsigned AgeShift = 62;
inline constexpr Word SiteMask = 0xFFFFFFFFULL;
inline constexpr Word BirthMask = 0x3FFFFFFFULL;
inline constexpr unsigned MaxAge = 3;

/// Builds a metadata word for an object born at \p BirthKB cumulative
/// allocation from site \p SiteId.
inline Word make(uint32_t SiteId, uint64_t BirthKB) {
  return static_cast<Word>(SiteId) | ((BirthKB & BirthMask) << BirthShift);
}

inline uint32_t site(Word Meta) {
  return static_cast<uint32_t>(Meta & SiteMask);
}

inline uint64_t birthKB(Word Meta) { return (Meta >> BirthShift) & BirthMask; }

inline unsigned age(Word Meta) {
  return static_cast<unsigned>(Meta >> AgeShift);
}

/// Returns \p Meta with the survival count bumped (saturating at MaxAge).
inline Word withBumpedAge(Word Meta) {
  unsigned Age = age(Meta);
  if (Age >= MaxAge)
    return Meta;
  return (Meta & ~(3ULL << AgeShift)) |
         (static_cast<Word>(Age + 1) << AgeShift);
}

} // namespace meta

//===----------------------------------------------------------------------===//
// Whole-object helpers (operating on payload pointers)
//===----------------------------------------------------------------------===//

/// Descriptor word of the object whose payload starts at \p Payload.
inline Word &descriptorOf(Word *Payload) { return Payload[-2]; }

/// Metadata word of the object whose payload starts at \p Payload.
inline Word &metaOf(Word *Payload) { return Payload[-1]; }

/// Total footprint in words (header + payload) given a descriptor.
inline uint32_t objectTotalWords(Word Descriptor) {
  return HeaderWords + header::length(Descriptor);
}

/// Payload size in bytes given a descriptor.
inline uint64_t objectPayloadBytes(Word Descriptor) {
  return static_cast<uint64_t>(header::length(Descriptor)) * sizeof(Word);
}

/// Total footprint in bytes (header + payload) given a descriptor.
inline uint64_t objectTotalBytes(Word Descriptor) {
  return static_cast<uint64_t>(objectTotalWords(Descriptor)) * sizeof(Word);
}

/// Invokes \p Fn with the address of every pointer field of the object at
/// \p Payload, using an explicitly supplied \p Descriptor. Needed when the
/// in-place header has been overwritten with a forwarding word but the
/// caller saved the original descriptor (the mark-compact nursery fixup).
template <typename FnT>
void forEachPointerFieldWith(Word Descriptor, Word *Payload, FnT Fn) {
  assert(!header::isForwarded(Descriptor) && "tracing a forwarded object");
  switch (header::kind(Descriptor)) {
  case ObjectKind::Record: {
    uint32_t Mask = header::ptrMask(Descriptor);
    while (Mask) {
      unsigned I = static_cast<unsigned>(__builtin_ctz(Mask));
      Fn(&Payload[I]);
      Mask &= Mask - 1;
    }
    return;
  }
  case ObjectKind::PtrArray: {
    uint32_t Len = header::length(Descriptor);
    for (uint32_t I = 0; I < Len; ++I)
      Fn(&Payload[I]);
    return;
  }
  case ObjectKind::NonPtrArray:
    return;
  case ObjectKind::Pad:
    TILGC_UNREACHABLE("tracing a pad filler");
  }
  TILGC_UNREACHABLE("bad object kind");
}

/// Invokes \p Fn with the address of every pointer field of the object at
/// \p Payload. Null fields are still visited; callers test for null.
template <typename FnT> void forEachPointerField(Word *Payload, FnT Fn) {
  forEachPointerFieldWith(descriptorOf(Payload), Payload, Fn);
}

} // namespace tilgc

#endif // TILGC_OBJECT_OBJECT_H
