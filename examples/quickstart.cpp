//===- examples/quickstart.cpp - Hello, tilgc ------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The smallest complete program: create a runtime, follow the pointer-slot
// discipline to build a list the collector may move at any time, force
// collections, and read the statistics the paper's tables are made of.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <cstdio>

using namespace tilgc;
using namespace tilgc::mllib;

int main() {
  // 1. Configure a runtime. Defaults mirror the paper: a two-generation
  //    collector with a 512K-capped nursery and a sequential store buffer.
  MutatorConfig Config;
  Config.BudgetBytes = 8u << 20;     // The paper's "k * Min" budget knob.
  Config.UseStackMarkers = true;     // §5: generational stack collection.
  Mutator M(Config);

  // 2. Every function that holds heap pointers across an allocation needs
  //    an activation record described by a trace table. Slot 0 is the
  //    return-address key; we declare two pointer slots.
  static const uint32_t Key = TraceTableRegistry::global().define(
      FrameLayout("quickstart.main", {Trace::pointer(), Trace::pointer()}));
  static const uint32_t Site =
      AllocSiteRegistry::global().define("quickstart.cons");

  Frame F(M, Key);

  // 3. Build a 100,000-element list. consInt reads its tail through the
  //    frame slot *after* allocating, because the allocation may trigger a
  //    collection that moves every object.
  for (int I = 100000; I >= 1; --I)
    F.set(1, consInt(M, Site, I, slot(F, 1)));

  // 4. Collections happen automatically; you can also force them.
  M.collect(/*Major=*/true);

  // 5. The list survived, wherever it lives now.
  int64_t Sum = sumInt(F.get(1));
  std::printf("sum(1..100000) = %lld (expected %lld)\n",
              static_cast<long long>(Sum), 100000LL * 100001 / 2);

  const GcStats &S = M.gcStats();
  std::printf("collections: %llu (%llu major), allocated %llu KB, "
              "copied %llu KB\n",
              (unsigned long long)S.NumGC, (unsigned long long)S.NumMajorGC,
              (unsigned long long)(S.BytesAllocated >> 10),
              (unsigned long long)(S.BytesCopied >> 10));
  std::printf("stack scans: %llu frames fresh, %llu reused via §5 markers\n",
              (unsigned long long)S.FramesScanned,
              (unsigned long long)S.FramesReused);
  return Sum == 100000LL * 100001 / 2 ? 0 : 1;
}
