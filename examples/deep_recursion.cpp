//===- examples/deep_recursion.cpp - Generational stack collection ---------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper's §5 phenomenon, isolated: a deeply non-tail-recursive
// function allocates at the bottom of a 3,000-frame stack, so every minor
// collection must process the stack for roots. Without stack markers the
// scan walks all 3,000 frames every time; with them, unchanged frames are
// served from the scan cache and minor collections skip their roots
// entirely. Exceptions are raised through marked frames along the way to
// exercise the watermark M.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <cstdio>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t exampleKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "deep.frame", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t exampleSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("deep.cons");
  return S;
}

/// Builds a chain of N activation records, then churns allocation at the
/// bottom. On the first attempt, an exception from the bottom unwinds the
/// deepest 50 frames in one jump (retiring their stack markers through the
/// watermark M); the handler then rebuilds them and retries.
uint64_t deep(Mutator &M, int N, int ChurnIters, bool AllowRaise) {
  Frame F(M, exampleKey());
  F.set(1, consInt(M, exampleSite(), N, slot(F, 2)));
  uint64_t Here = static_cast<uint64_t>(headInt(F.get(1)));
  if (N == 50) {
    uint64_t H = M.pushHandler(F.base());
    try {
      uint64_t Sub = deep(M, N - 1, ChurnIters, AllowRaise);
      M.popHandler(H);
      return Sub + Here;
    } catch (MLRaise &R) {
      if (R.HandlerId != H)
        throw;
      // 50 frames vanished in one jump; rebuild and finish without raising.
      return deep(M, N - 1, ChurnIters, /*AllowRaise=*/false) + Here;
    }
  }
  if (N > 0)
    return deep(M, N - 1, ChurnIters, AllowRaise) + Here;

  uint64_t Sum = 0;
  for (int I = 1; I <= ChurnIters; ++I) {
    F.set(3, consInt(M, exampleSite(), I, slot(F, 2)));
    Sum += static_cast<uint64_t>(headInt(F.get(3)));
    if (AllowRaise && I == 700)
      M.raise(F.get(3)); // One jump past 49 marked frames to the handler.
  }
  return Sum;
}

void runOnce(const char *Tag, bool Markers) {
  MutatorConfig C;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = Markers;
  Mutator M(C);

  uint64_t Got = deep(M, 3000, 200000, /*AllowRaise=*/true);
  const GcStats &S = M.gcStats();
  double Reuse =
      100.0 * (double)S.FramesReused /
      (double)(S.FramesReused + S.FramesScanned ? S.FramesReused +
                                                      S.FramesScanned
                                                : 1);
  std::printf("%-16s gc=%6.3fs stack=%6.3fs  GCs=%4llu  frames "
              "scanned=%8llu reused=%8llu (%.1f%%)  raises=%llu  sum=%llu\n",
              Tag, S.gcSeconds(), S.stackSeconds(),
              (unsigned long long)S.NumGC,
              (unsigned long long)S.FramesScanned,
              (unsigned long long)S.FramesReused, Reuse,
              (unsigned long long)M.raises(), (unsigned long long)Got);
}

} // namespace

int main() {
  std::printf("3000-frame stack, allocation churn at the bottom, periodic "
              "exceptions (paper §5):\n\n");
  runOnce("full scans", false);
  runOnce("stack markers", true);
  std::printf("\nThe marker run should scan a small fraction of the frames "
              "(paper Table 5: up to 74%% less GC time).\n");
  return 0;
}
