//===- examples/gc_torture.cpp - Interactive torture driver ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Runs all eleven paper benchmarks back-to-back under one collector
// configuration chosen on the command line, validating every checksum —
// handy for soak-testing a collector change.
//
// Usage:
//   gc_torture [semispace|generational] [--markers] [--pretenure]
//              [--cards] [--aged=N] [--budget=BYTES] [--scale=S]
//              [--threads=N]
//
// Set TILGC_TRACE_OUT=<path> to write a chrome://tracing JSON of the last
// workload's collections (each run overwrites the file).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace tilgc;

int main(int Argc, char **Argv) {
  MutatorConfig C;
  C.BudgetBytes = 2u << 20;
  C.VerifyHeapAfterGC = true;
  double Scale = 0.5;
  bool Pretenure = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strcmp(A, "semispace"))
      C.Kind = CollectorKind::Semispace;
    else if (!std::strcmp(A, "generational"))
      C.Kind = CollectorKind::Generational;
    else if (!std::strcmp(A, "--markers"))
      C.UseStackMarkers = true;
    else if (!std::strcmp(A, "--cards"))
      C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    else if (!std::strcmp(A, "--pretenure"))
      Pretenure = true;
    else if (!std::strncmp(A, "--aged=", 7))
      C.PromoteAgeThreshold = static_cast<unsigned>(std::atoi(A + 7));
    else if (!std::strncmp(A, "--budget=", 9))
      C.BudgetBytes = static_cast<size_t>(std::atol(A + 9));
    else if (!std::strncmp(A, "--scale=", 8))
      Scale = std::atof(A + 8);
    else if (!std::strncmp(A, "--threads=", 10))
      C.GcThreads = static_cast<unsigned>(std::atoi(A + 10));
    else {
      std::fprintf(stderr, "unknown flag %s\n", A);
      return 2;
    }
  }

  int Failures = 0;
  for (const auto &W : allWorkloads()) {
    MutatorConfig Run = C;
    if (Pretenure && C.Kind == CollectorKind::Generational) {
      MutatorConfig Prof = C;
      Prof.EnableProfiling = true;
      Mutator PM(Prof);
      (void)W->run(PM, Scale);
      Run.Pretenure = PM.profiler()->derivePretenureSet(0.8);
    }
    Mutator M(Run);
    uint64_t Got = W->run(M, Scale);
    bool OK = Got == W->expected(Scale);
    Failures += !OK;
    const GcStats &S = M.gcStats();
    std::printf("%-13s %-4s gc=%6.3fs GCs=%5llu copied=%8lluKB "
                "frames(avg)=%6.1f\n",
                W->name(), OK ? "OK" : "BAD", S.gcSeconds(),
                (unsigned long long)S.NumGC,
                (unsigned long long)(S.BytesCopied >> 10), S.avgFramesAtGC());
  }
  std::printf("%s\n", Failures ? "FAILURES PRESENT" : "all checksums match");
  return Failures ? 1 : 0;
}
