//===- examples/gc_torture.cpp - Interactive torture driver ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Runs all eleven paper benchmarks back-to-back under one collector
// configuration chosen on the command line, validating every checksum —
// handy for soak-testing a collector change.
//
// Usage:
//   gc_torture [semispace|generational] [--markers] [--pretenure]
//              [--cards] [--aged=N] [--budget=BYTES] [--scale=S]
//              [--threads=N] [--mutators=N]
//
// --threads controls parallel GC workers; --mutators runs each workload
// on N concurrent mutator threads sharing one heap (TLABs + safepoints),
// with every thread's checksum validated independently.
//
// Set TILGC_TRACE_OUT=<path> to write a chrome://tracing JSON of the last
// workload's collections (each run overwrites the file).
//
//===----------------------------------------------------------------------===//

#include "runtime/MutatorGroup.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace tilgc;

int main(int Argc, char **Argv) {
  MutatorConfig C;
  C.BudgetBytes = 2u << 20;
  C.VerifyHeapAfterGC = true;
  double Scale = 0.5;
  bool Pretenure = false;
  unsigned Mutators = 1;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strcmp(A, "semispace"))
      C.Kind = CollectorKind::Semispace;
    else if (!std::strcmp(A, "generational"))
      C.Kind = CollectorKind::Generational;
    else if (!std::strcmp(A, "--markers"))
      C.UseStackMarkers = true;
    else if (!std::strcmp(A, "--cards"))
      C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    else if (!std::strcmp(A, "--pretenure"))
      Pretenure = true;
    else if (!std::strncmp(A, "--aged=", 7))
      C.PromoteAgeThreshold = static_cast<unsigned>(std::atoi(A + 7));
    else if (!std::strncmp(A, "--budget=", 9))
      C.BudgetBytes = static_cast<size_t>(std::atol(A + 9));
    else if (!std::strncmp(A, "--scale=", 8))
      Scale = std::atof(A + 8);
    else if (!std::strncmp(A, "--threads=", 10))
      C.GcThreads = static_cast<unsigned>(std::atoi(A + 10));
    else if (!std::strncmp(A, "--mutators=", 11))
      Mutators = static_cast<unsigned>(std::atoi(A + 11));
    else {
      std::fprintf(stderr, "unknown flag %s\n", A);
      return 2;
    }
  }

  int Failures = 0;
  for (const auto &W : allWorkloads()) {
    MutatorConfig Run = C;
    if (Pretenure && C.Kind == CollectorKind::Generational) {
      MutatorConfig Prof = C;
      Prof.EnableProfiling = true;
      Mutator PM(Prof);
      (void)W->run(PM, Scale);
      Run.Pretenure = PM.profiler()->derivePretenureSet(0.8);
    }
    if (Mutators > 1) {
      // Shared heap: scale the budget with the thread count so per-thread
      // GC pressure matches the single-mutator run.
      Run.BudgetBytes *= Mutators;
      MutatorGroup G(Run, Mutators);
      std::vector<uint64_t> Sums(Mutators, 0);
      G.run([&](Mutator &TM, unsigned I) {
        std::unique_ptr<Workload> Mine = makeWorkloadByName(W->name());
        Sums[I] = Mine->run(TM, Scale);
      });
      bool OK = true;
      for (uint64_t Sum : Sums)
        OK = OK && Sum == W->expected(Scale);
      Failures += !OK;
      const GcStats &S = G.gcStats();
      std::printf("%-13s %-4s gc=%6.3fs GCs=%5llu copied=%8lluKB "
                  "stops=%5llu\n",
                  W->name(), OK ? "OK" : "BAD", S.gcSeconds(),
                  (unsigned long long)S.NumGC,
                  (unsigned long long)(S.BytesCopied >> 10),
                  (unsigned long long)S.SafepointStops);
      continue;
    }
    Mutator M(Run);
    uint64_t Got = W->run(M, Scale);
    bool OK = Got == W->expected(Scale);
    Failures += !OK;
    const GcStats &S = M.gcStats();
    std::printf("%-13s %-4s gc=%6.3fs GCs=%5llu copied=%8lluKB "
                "frames(avg)=%6.1f\n",
                W->name(), OK ? "OK" : "BAD", S.gcSeconds(),
                (unsigned long long)S.NumGC,
                (unsigned long long)(S.BytesCopied >> 10), S.avgFramesAtGC());
  }
  std::printf("%s\n", Failures ? "FAILURES PRESENT" : "all checksums match");
  return Failures ? 1 : 0;
}
