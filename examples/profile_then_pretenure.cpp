//===- examples/profile_then_pretenure.cpp - The §6 pipeline ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper's profile-driven pretenuring workflow, end to end:
//
//   1. run the program once with the heap profiler attached,
//   2. inspect the per-site lifetime report (the paper's Figure 2),
//   3. derive the pretenure set (sites with old% >= 80%),
//   4. optionally persist the profile to disk and reload it,
//   5. re-run with pretenuring and compare collector work.
//
// Uses the Nqueen benchmark — the paper's flagship pretenuring example
// (Table 6: 50% GC-time reduction; Figure 2: four sites carry 99% of all
// copied bytes).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cstdio>

using namespace tilgc;

int main() {
  Workload *W = findWorkload("Nqueen");
  const double Scale = 1.0;
  const size_t Budget = 4u << 20;

  // --- 1. Profiled run -------------------------------------------------
  std::vector<PretenureDecision> Decisions;
  {
    MutatorConfig C;
    C.BudgetBytes = Budget;
    C.EnableProfiling = true;
    Mutator M(C);
    (void)W->run(M, Scale);

    // --- 2. The Figure 2 report ---------------------------------------
    M.profiler()->report(stdout, "Nqueen heap profile");

    // --- 3. Derive the pretenure set ----------------------------------
    Decisions = M.profiler()->derivePretenureSet(/*OldCutoff=*/0.8);
    std::printf("pretenure set (old%% >= 80%%):\n");
    for (const PretenureDecision &D : Decisions)
      std::printf("  site %-20s%s\n",
                  AllocSiteRegistry::global().name(D.SiteId).c_str(),
                  D.EliminateScan ? "  [scan eliminated, §7.2]" : "");

    // --- 4. Persist / reload (how a build system would wire this) -----
    M.profiler()->save("/tmp/nqueen.heapprofile");
    HeapProfiler Reloaded;
    Reloaded.load("/tmp/nqueen.heapprofile");
    std::printf("profile round-trips: %s\n\n",
                Reloaded.derivePretenureSet(0.8).size() == Decisions.size()
                    ? "yes"
                    : "NO");
  }

  // --- 5. Before/after comparison --------------------------------------
  auto Measure = [&](const char *Tag, const MutatorConfig &C) {
    Mutator M(C);
    uint64_t Got = W->run(M, Scale);
    const GcStats &S = M.gcStats();
    std::printf("%-16s GCs=%4llu copied=%8llu KB  gc=%.3fs  valid=%s\n", Tag,
                (unsigned long long)S.NumGC,
                (unsigned long long)(S.BytesCopied >> 10), S.gcSeconds(),
                Got == W->expected(Scale) ? "yes" : "NO");
    return S.BytesCopied;
  };

  MutatorConfig Plain;
  Plain.BudgetBytes = Budget;
  Plain.UseStackMarkers = true;
  uint64_t Before = Measure("markers only", Plain);

  MutatorConfig Pre = Plain;
  Pre.Pretenure = Decisions;
  uint64_t After = Measure("with pretenure", Pre);

  std::printf("\ncopied bytes reduced by %.0f%% (paper Table 6: Nqueen "
              "copied 5.3MB -> 0.2MB at k=1.5)\n",
              Before ? 100.0 * (double)(Before - After) / (double)Before
                     : 0.0);
  return 0;
}
